"""Epoch-stepped fast path for the discrete-event engine.

The scalar engine (:mod:`repro.memsim.engine.simulator`) replays one op
at a time through a ``heapq`` — exact, but O(ops log threads) Python
work. This module replays the *same trace through the same component
models* in batched epochs:

* per-thread op addresses and unthrottled issue times are precomputed as
  arrays (phases + ``k * issue_gap`` + accumulated jitter);
* each epoch slices a block of ops per thread, splits them into stripe
  fragments with ``np.repeat`` (masked fragment splitting), and resolves
  every DIMM's FIFO queue with a vectorized scan: for arrival times
  ``a`` and service times ``s`` sorted by arrival,
  ``end = cumsum(s) + max(accumulate_max(a - (cumsum(s) - s)), free_at)``
  — the closed form of ``end_i = max(a_i, end_{i-1}, free_at) + s_i``;
* the per-DIMM ``free_at`` scalar carries queue state between epochs,
  and per-thread issue *lag* carries the read-MLP stall / write-queue
  backpressure feedback at epoch granularity.

Mechanisms that the scalar engine resolves per op are approximated per
epoch (line-buffer residency, write-combining stream sensing, the exact
interleaving of stalls), so results are **not** bit-identical: the
contract is agreement with the scalar engine within the cross-check
tolerance band (:mod:`repro.memsim.crosscheck`), and the scalar engine
remains the reference oracle.

Known divergences
-----------------

Sub-line reads at extreme thread counts (36 threads of 64 B reads) sit
at the edge of the tolerance band: the scalar replay's op-by-op stall
interleaving gradually *decoheres* line-buffer sharing until every read
pays full line amplification (~4x media traffic), while the epoch fixed
point converges to a steady state that keeps partial sharing. Both are
self-consistent resolutions of the same contention; the anchor tolerance
for that regime (0.60 relative) absorbs the gap, and the grouped-36T
anchor passes at ~0.95 of tolerance. All other anchors agree within a
few percent. When tightening tolerances, revisit the line-buffer
residency window (:data:`_LINE_BUFFER_CAPACITY`) first.
"""

from __future__ import annotations

import numpy as np

from repro.errors import SimulationError, WorkloadError
from repro.memsim.calibration import DeviceCalibration
from repro.memsim.constants import INTERLEAVE_SIZE, OPTANE_LINE
from repro.memsim.context import EvalContext
from repro.memsim.engine.simulator import DiscreteEventEngine, EngineConfig, EngineResult
from repro.memsim.spec import Layout, Op, Pattern
from repro.memsim.topology import MediaKind, SystemTopology
from repro.units import GB, NS
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.obs import Recorder

#: Scalar-engine constants mirrored here: the channel-speed turnaround of
#: a read-buffer hit and the WPQ backlog the sfence model tolerates.
_BUFFER_HIT_SECONDS = 10 * NS
_WPQ_BACKLOG_SLOTS = 32
_WPQ_SLOT_BYTES = 64
#: The scalar engine senses write-stream concurrency from the last 32
#: ops served per DIMM; an epoch sees a wider window, so the distinct
#: thread count is mapped through the expected number of distinct values
#: in 32 uniform draws (the coupon-collector expectation).
_CONCURRENCY_WINDOW = 32
#: Per-DIMM read line buffer capacity (mirrors ``_Dimm``): sub-line
#: reads hit only while their line is still resident, which the epoch
#: path approximates as a time window — the capacity's worth of lines
#: served at the full per-DIMM media rate.
_LINE_BUFFER_CAPACITY = 16
#: Sub-line read epochs iterate arrivals/completions to a fixed point;
#: the loop stops once the largest arrival correction is below this
#: slack (or after this many extra passes).
_MAX_MLP_PASSES = 8
_MLP_SLACK = 0.001 * NS  # simlint: ignore[unit-literal] -- convergence slack, not a unit


class EpochEngine:
    """Batched replay of :class:`EngineConfig` traces.

    Construction mirrors :class:`DiscreteEventEngine` — in particular an
    :class:`~repro.memsim.context.EvalContext` fixes topology,
    calibration and component models in one bundle — because the fast
    path must consult the *same* calibrated models as the oracle.
    """

    def __init__(
        self,
        topology: SystemTopology | None = None,
        calibration: DeviceCalibration | None = None,
        *,
        write_combining_enabled: bool = True,
        context: EvalContext | None = None,
    ) -> None:
        self._oracle = DiscreteEventEngine(
            topology,
            calibration,
            write_combining_enabled=write_combining_enabled,
            context=context,
        )

    # ------------------------------------------------------------------

    def _addresses(self, config: EngineConfig, ops_per_thread: int) -> np.ndarray:
        """The (threads, ops) address grid of the scalar engine's trace."""
        threads = config.threads
        size = config.access_size
        k = np.arange(ops_per_thread, dtype=np.int64)[None, :]
        t = np.arange(threads, dtype=np.int64)[:, None]
        if config.pattern is Pattern.RANDOM:
            region = config.region_bytes or config.total_bytes
            if region < size:
                raise WorkloadError("region smaller than one access")
            addresses = np.empty((threads, ops_per_thread), dtype=np.int64)
            for tid in range(threads):
                rng = np.random.default_rng((config.seed, tid))
                draws = rng.integers(0, region - size, size=ops_per_thread)
                addresses[tid] = draws - draws % 64
            return addresses
        if config.layout is Layout.GROUPED:
            return (k * threads + t) * size
        slice_bytes = ops_per_thread * size
        return t * slice_bytes + k * size

    def _miss_lines(
        self, config: EngineConfig, addresses: np.ndarray
    ) -> np.ndarray | None:
        """Per-op count of 256 B media lines the read buffer cannot serve.

        Sequential streams share their first line with the predecessor op
        of the same stream (the thread for individual layout, the global
        group order for grouped layout); random ops miss every line. The
        scalar engine resolves this dynamically through each DIMM's LRU
        line buffer — at typical thread counts the active lines fit the
        16-line capacity, so predecessor sharing is the dominant effect.
        The exception is grouped *sub-line* reads, where the sharing
        threads arrive spread out in time and the line is often evicted
        in between (the §3.1 penalty); that case returns ``None`` and is
        resolved per epoch from the actual arrival times.
        """
        if config.media is not MediaKind.PMEM or config.op is not Op.READ:
            return None
        if (
            config.pattern is Pattern.SEQUENTIAL
            and config.access_size < OPTANE_LINE
        ):
            return None
        size = config.access_size
        first = addresses // OPTANE_LINE
        last = (addresses + size - 1) // OPTANE_LINE
        lines = last - first + 1
        if config.pattern is Pattern.RANDOM:
            return lines
        shared = np.zeros_like(lines)
        if config.layout is Layout.GROUPED:
            threads = addresses.shape[0]
            k = np.arange(addresses.shape[1], dtype=np.int64)[None, :]
            t = np.arange(threads, dtype=np.int64)[:, None]
            order = k * threads + t
            predecessor_last = (order * size - 1) // OPTANE_LINE
            shared = ((order > 0) & (first == predecessor_last)).astype(np.int64)
        else:
            shared[:, 1:] = (first[:, 1:] == last[:, :-1]).astype(np.int64)
        return lines - shared

    # ------------------------------------------------------------------

    def run(
        self, config: EngineConfig, *, recorder: "Recorder | None" = None
    ) -> EngineResult:
        """Replay the configured trace in batched epochs."""
        engine = self._oracle
        ways = engine._ways(config.media)
        per_dimm_rate, op_overhead, stream_rate = engine._rates(config)
        granularity = INTERLEAVE_SIZE
        threads = config.threads
        size = config.access_size
        ops_per_thread = (config.total_bytes // size) // threads
        if ops_per_thread < 1:
            raise SimulationError("trace produced no operations")

        issue_gap = op_overhead + size / (stream_rate * GB)
        if config.pattern is Pattern.RANDOM and config.op is Op.READ:
            issue_gap += engine.calibration.pmem.random_read_latency

        addresses = self._addresses(config, ops_per_thread)
        miss_lines = self._miss_lines(config, addresses)

        rng = np.random.default_rng(config.seed)
        phases = rng.uniform(0.0, config.phase_spread, size=threads)
        k = np.arange(ops_per_thread, dtype=np.float64)[None, :]
        base = phases[:, None] + k * issue_gap
        if config.issue_jitter > 0:
            drift = np.cumsum(
                rng.exponential(config.issue_jitter, size=(threads, ops_per_thread)),
                axis=1,
            )
            base[:, 1:] += drift[:, :-1]

        is_write = config.op is Op.WRITE
        grouped_small = (
            config.layout is Layout.GROUPED and size < OPTANE_LINE
        )
        timed_line_model = (
            config.media is MediaKind.PMEM
            and config.op is Op.READ
            and config.pattern is Pattern.SEQUENTIAL
            and size < OPTANE_LINE
        )
        read_buffered = miss_lines is not None or timed_line_model
        residency = _LINE_BUFFER_CAPACITY * OPTANE_LINE / (per_dimm_rate * GB)
        mlp_budget = config.effective_read_mlp
        backlog_allowance = (
            _WPQ_BACKLOG_SLOTS * _WPQ_SLOT_BYTES / (per_dimm_rate * GB)
        )

        free_at = np.zeros(ways)
        lag = np.zeros(threads)
        completion_history = np.zeros((threads, mlp_budget))
        bytes_served = [0] * ways
        media_served = [0.0] * ways
        buffer_bytes = [0] * ways
        buffer_hits = [0] * ways
        buffer_misses = [0] * ways
        wc_hits = [0] * ways
        wc_misses = [0] * ways
        efficiency_memo: dict[int, float] = {}
        media_total = 0.0
        end_time = 0.0

        # The scalar engine senses stream concurrency over a 32-*fragment*
        # window, and a multi-stripe op appends all its fragments on one
        # DIMM back to back — so large ops shrink the window to very few
        # distinct threads. Rescale the draw count by the fragments one
        # op contributes per DIMM.
        stripes_per_op = (size - 1) // granularity + 1
        frags_per_dimm = max(1, -(-stripes_per_op // ways))
        sense_draws = max(1, round(_CONCURRENCY_WINDOW / frags_per_dimm))
        # Sub-line reads retire in order against a deep MLP budget, so a
        # thread's issue pace is gated by miss round-trips *within* an
        # epoch; those epochs are resolved twice — once unthrottled, then
        # again with arrivals clamped to the retirement window.
        mlp_correct = (
            config.media is MediaKind.PMEM
            and config.op is Op.READ
            and config.pattern is Pattern.SEQUENTIAL
            and size < OPTANE_LINE
        )

        epoch = max(1, min(ops_per_thread, max(8, 4096 // threads)))
        if mlp_correct:
            # The retirement constraint propagates one MLP window per
            # pass, so the fixed-point loop only converges if an epoch
            # spans a small number of windows.
            epoch = max(8, min(epoch, 2 * mlp_budget))
        start = 0
        while start < ops_per_thread:
            stop = min(ops_per_thread, start + epoch)
            span = stop - start
            arrivals = base[:, start:stop] + lag[:, None]
            block_addr = addresses[:, start:stop]

            # Masked fragment split: one row per (op, stripe) pair.
            first_stripe = block_addr // granularity
            frag_counts = (
                (block_addr + size - 1) // granularity - first_stripe + 1
            ).ravel()
            op_index = np.repeat(np.arange(threads * span), frag_counts)
            frag_rank = np.arange(frag_counts.sum()) - np.repeat(
                np.cumsum(frag_counts) - frag_counts, frag_counts
            )
            stripe_base = (first_stripe.ravel()[op_index] + frag_rank) * granularity
            op_addr = block_addr.ravel()[op_index]
            frag_start = np.maximum(op_addr, stripe_base)
            frag_end = np.minimum(op_addr + size, stripe_base + granularity)
            frag_chunk = frag_end - frag_start
            frag_dimm = (frag_start // granularity) % ways
            frag_tid = op_index // span
            frag_lines = (frag_end - 1) // OPTANE_LINE - frag_start // OPTANE_LINE + 1

            # Arrival-independent media costs (everything but the timed
            # line model, which must see the pass's arrival times).
            dimm_efficiency = None
            if timed_line_model:
                static_media = None
            elif miss_lines is not None:
                # Charge each op's buffer-shared first line to its first
                # fragment (stripe boundaries are line-aligned, so every
                # other fragment starts on a fresh line).
                op_shared = (
                    (block_addr + size - 1) // OPTANE_LINE
                    - block_addr // OPTANE_LINE
                    + 1
                    - miss_lines[:, start:stop]
                ).ravel()[op_index]
                frag_miss = frag_lines - np.where(frag_rank == 0, op_shared, 0)
                static_media = frag_miss * float(OPTANE_LINE)
            elif config.media is MediaKind.PMEM and is_write:
                static_media = np.empty(frag_chunk.shape[0])
                dimm_efficiency = np.empty(ways)
                for d in range(ways):
                    on_dimm = frag_dimm == d
                    distinct = int(np.unique(frag_tid[on_dimm]).shape[0])
                    if distinct == 0:
                        dimm_efficiency[d] = 1.0
                        continue
                    sensed = max(
                        1,
                        round(
                            distinct
                            * (1.0 - (1.0 - 1.0 / distinct) ** sense_draws)
                        ),
                    )
                    eff = efficiency_memo.get(sensed)
                    if eff is None:
                        eff = engine.write_combining.efficiency(sensed, size)
                        if grouped_small:
                            eff *= engine.write_combining.grouped_small_write_factor(
                                size
                            )
                        efficiency_memo[sensed] = eff
                    dimm_efficiency[d] = eff
                    static_media[on_dimm] = frag_chunk[on_dimm] / eff
            else:
                static_media = frag_chunk.astype(np.float64)

            line_id = op_addr // OPTANE_LINE

            def resolve(block_arrivals: np.ndarray):
                """Media, queue drain, and op completions for one pass."""
                frag_arrival = block_arrivals.ravel()[op_index]
                if timed_line_model:
                    # Grouped sub-line reads: the LRU refreshes a line on
                    # every touch, so an arrival hits only if the gap
                    # since the line's *previous* touch is within the
                    # residency window; a longer gap means eviction and
                    # a fresh media fetch.
                    by_line = np.lexsort((frag_arrival, line_id))
                    sorted_arrival = frag_arrival[by_line]
                    first_of_line = np.ones(by_line.shape[0], dtype=bool)
                    first_of_line[1:] = line_id[by_line][1:] != line_id[by_line][:-1]
                    gap = np.empty_like(sorted_arrival)
                    gap[0] = 0.0
                    gap[1:] = sorted_arrival[1:] - sorted_arrival[:-1]
                    missed = first_of_line | (gap > residency)
                    frag_miss_timed = np.empty(by_line.shape[0], dtype=np.int64)
                    frag_miss_timed[by_line] = missed * frag_lines[by_line]
                    frag_media = frag_miss_timed * float(OPTANE_LINE)
                else:
                    frag_media = static_media
                service = np.maximum(frag_media, 0.15 * frag_chunk) / (
                    per_dimm_rate * GB
                )
                frag_done = frag_arrival + _BUFFER_HIT_SECONDS
                queued = frag_media > 0.0
                free_local = free_at.copy()
                for d in range(ways):
                    indices = np.flatnonzero((frag_dimm == d) & queued)
                    if indices.shape[0] == 0:
                        continue
                    order = indices[
                        np.argsort(frag_arrival[indices], kind="stable")
                    ]
                    ordered_service = service[order]
                    busy = np.cumsum(ordered_service)
                    start_bound = frag_arrival[order] - (busy - ordered_service)
                    floor = np.maximum.accumulate(start_bound)
                    done = busy + np.maximum(floor, free_local[d])
                    frag_done[order] = done
                    free_local[d] = done[-1]
                completion = block_arrivals.ravel().copy()
                np.maximum.at(completion, op_index, frag_done)
                return (
                    frag_media,
                    queued,
                    completion.reshape(threads, span),
                    free_local,
                )

            unconstrained = arrivals
            frag_media, queued, completion, free_next = resolve(arrivals)
            passes = 0
            while mlp_correct and passes < _MAX_MLP_PASSES:
                window = np.maximum.accumulate(
                    np.concatenate([completion_history, completion], axis=1),
                    axis=1,
                )
                # In-order retirement: op ``e`` cannot issue before every
                # op up to ``e - budget`` has completed. Column ``j`` of
                # the window is op ``start - budget + j``, so op
                # ``start + e`` reads column ``e``. A stall is an
                # *additive* shift — the woken thread resumes issuing at
                # its normal spacing — so the correction is a monotone
                # per-thread lift over the unconstrained schedule, not a
                # clamp to the completion times themselves.
                lift = np.maximum.accumulate(
                    np.maximum(window[:, :span] - unconstrained, 0.0), axis=1
                )
                constrained = unconstrained + lift
                if not bool(np.any(constrained > arrivals + _MLP_SLACK)):
                    break
                arrivals = constrained
                frag_media, queued, completion, free_next = resolve(arrivals)
                passes += 1
            free_at = free_next

            for d in range(ways):
                on_dimm = frag_dimm == d
                bytes_served[d] += int(frag_chunk[on_dimm].sum())
                media_served[d] += float(frag_media[on_dimm].sum())
                if read_buffered:
                    misses_here = int(
                        round(float(frag_media[on_dimm].sum()) / OPTANE_LINE)
                    )
                    buffer_misses[d] += misses_here
                    buffer_hits[d] += int(frag_lines[on_dimm].sum()) - misses_here
                    buffer_bytes[d] += int(frag_chunk[on_dimm & ~queued].sum())
                if dimm_efficiency is not None:
                    count = int(np.count_nonzero(on_dimm))
                    if dimm_efficiency[d] >= 1.0:
                        wc_hits[d] += count
                    else:
                        wc_misses[d] += count

            media_total += float(frag_media.sum())
            end_time = max(end_time, float(completion.max()))

            if stop < ops_per_thread:
                if is_write:
                    required = (
                        completion[:, -1] - backlog_allowance + op_overhead
                    )
                else:
                    window = np.maximum.accumulate(
                        np.concatenate([completion_history, completion], axis=1),
                        axis=1,
                    )
                    required = window[:, span]
                    completion_history = window[:, -mlp_budget:]
                lag = np.maximum(lag, required - base[:, stop])
            start = stop

        bytes_moved = threads * ops_per_thread * size
        if recorder is not None and recorder.enabled:
            from repro.obs import probes

            probes.emit_engine(
                recorder,
                [
                    (
                        bytes_served[d],
                        bytes_served[d] - buffer_bytes[d],
                        buffer_bytes[d],
                        buffer_hits[d],
                        buffer_misses[d],
                        wc_hits[d],
                        wc_misses[d],
                    )
                    for d in range(ways)
                ],
                threads * ops_per_thread,
                bytes_moved,
                media_total,
            )
        return EngineResult(
            seconds=end_time,
            bytes_moved=bytes_moved,
            per_dimm_bytes=bytes_served,
            media_bytes=media_total,
        )


def run_epochs(
    config: EngineConfig,
    recorder: "Recorder | None" = None,
    **engine_kwargs: object,
) -> EngineResult:
    """One-shot convenience wrapper around :class:`EpochEngine`."""
    return EpochEngine(**engine_kwargs).run(config, recorder=recorder)
