"""``ResultColumns``: structure-of-arrays batches of evaluation results.

The paper's thesis — bandwidth is maximized by moving wide, contiguous,
well-shaped data — applies to the reproduction's own result path. A
sweep's results used to leave the batched kernel as a list of per-point
:class:`~repro.memsim.evaluation.BandwidthResult` objects, and just
*constructing* the three objects per point (counters dict, frozen
stream, slotted result) cost ~4.7 µs under a ~25-30 µs scalar baseline —
an irreducible floor that capped the vector backend near 3.5-4.5x.

:class:`ResultColumns` keeps results columnar end-to-end: one plain
Python list per observable (stream bandwidths, counter fields, note
tuples, directory states), with point boundaries in ``offsets`` so
multi-stream points fit the same layout. Per-point objects exist only as
**lazy views**: :meth:`view` builds a ``BandwidthResult`` bit-identical
to the scalar evaluator's — via the same ``__new__`` fast path
``BandwidthResult.copy`` uses — on first request and caches it, so
callers that never ask for objects never pay for them.

Row data is immutable (floats, ints, tuples, frozen dataclasses), which
makes :meth:`append_from` and :meth:`extend` safe structural sharing:
the sweep service assembles output batches from cached blocks and fresh
kernel batches without copying row contents. The view cache itself is
*never* shared between batches (views hold a mutable
:class:`~repro.memsim.counters.PerfCounters` a caller may annotate) and
is dropped on pickling, so column blocks cross the process-pool and
disk-cache boundaries as pure data.

This module deliberately imports no NumPy: consumers that only ship or
store column blocks (the sweep cache, the process pool) stay off the
kernel import path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.memsim.counters import PerfCounters
from repro.memsim.evaluation import BandwidthResult, StreamResult

if TYPE_CHECKING:
    from repro.memsim.config import DirectoryState
    from repro.memsim.spec import StreamSpec

__all__ = ["COUNTER_COLUMNS", "ResultColumns"]

#: The scalar :class:`PerfCounters` fields stored as per-point columns,
#: in dataclass field order. ``notes`` is kept separately (a tuple per
#: point) because views must hand each caller a fresh mutable list.
COUNTER_COLUMNS: tuple[str, ...] = (
    "app_bytes_read",
    "app_bytes_written",
    "media_bytes_read",
    "media_bytes_written",
    "upi_bytes",
    "upi_utilization",
    "page_faults",
    "page_fault_seconds",
    "rpq_occupancy",
    "wpq_occupancy",
)

#: Sentinel distinguishing "use the source row's directory" from an
#: explicit ``None`` override in :meth:`ResultColumns.append_from`.
_KEEP = object()


class ResultColumns:
    """A batch of evaluation results stored structure-of-arrays.

    Per-stream columns (``specs``, ``gbps``, ``solo_gbps``,
    ``stream_notes``) are flat; point ``i`` owns the slice
    ``offsets[i]:offsets[i+1]``. Per-point columns hold one entry per
    point: the ten scalar :class:`PerfCounters` fields
    (:data:`COUNTER_COLUMNS`), ``counter_notes``, and
    ``directory_after``.
    """

    __slots__ = (
        "offsets",
        "specs",
        "gbps",
        "solo_gbps",
        "stream_notes",
        *COUNTER_COLUMNS,
        "counter_notes",
        "directory_after",
        "_views",
    )

    def __init__(self) -> None:
        self.offsets: list[int] = [0]
        self.specs: list["StreamSpec"] = []
        self.gbps: list[float] = []
        self.solo_gbps: list[float] = []
        self.stream_notes: list[tuple[str, ...]] = []
        for name in COUNTER_COLUMNS:
            setattr(self, name, [])
        self.counter_notes: list[tuple[str, ...]] = []
        self.directory_after: list["DirectoryState | None"] = []
        self._views: list[BandwidthResult | None] = []

    # ------------------------------------------------------------------
    # construction / ingestion
    # ------------------------------------------------------------------

    @classmethod
    def from_results(cls, results: Iterable[BandwidthResult]) -> "ResultColumns":
        """Columnarize already-materialized results (order preserved)."""
        columns = cls()
        for result in results:
            columns.append_result(result)
        return columns

    def append_result(
        self,
        result: BandwidthResult,
        *,
        directory_after: object = _KEEP,
    ) -> None:
        """Append one result as a new row (its objects are not retained).

        ``directory_after`` overrides the stored directory state — the
        sweep service uses it to rebase cached rows onto the caller's
        input state without touching the source entry.
        """
        for stream in result.streams:
            self.specs.append(stream.spec)
            self.gbps.append(stream.gbps)
            self.solo_gbps.append(stream.solo_gbps)
            self.stream_notes.append(tuple(stream.notes))
        self.offsets.append(len(self.specs))
        counters = result.counters
        for name in COUNTER_COLUMNS:
            getattr(self, name).append(getattr(counters, name))
        self.counter_notes.append(tuple(counters.notes))
        self.directory_after.append(
            result.directory_after if directory_after is _KEEP else directory_after
        )
        self._views.append(None)

    def append_from(
        self,
        other: "ResultColumns",
        row: int,
        *,
        directory_after: object = _KEEP,
    ) -> None:
        """Append row ``row`` of ``other`` (structural sharing, no views).

        Row contents are immutable, so sharing them is safe; the view
        cache is deliberately *not* carried over — a view's counters are
        mutable and must never be reachable from two batches.
        """
        lo, hi = other.offsets[row], other.offsets[row + 1]
        self.specs.extend(other.specs[lo:hi])
        self.gbps.extend(other.gbps[lo:hi])
        self.solo_gbps.extend(other.solo_gbps[lo:hi])
        self.stream_notes.extend(other.stream_notes[lo:hi])
        self.offsets.append(len(self.specs))
        for name in COUNTER_COLUMNS:
            getattr(self, name).append(getattr(other, name)[row])
        self.counter_notes.append(other.counter_notes[row])
        self.directory_after.append(
            other.directory_after[row]
            if directory_after is _KEEP
            else directory_after
        )
        self._views.append(None)

    def extend(self, other: "ResultColumns") -> None:
        """Append every row of ``other`` in order (bulk, column-wise)."""
        base = self.offsets[-1]
        self.offsets.extend(base + offset for offset in other.offsets[1:])
        self.specs.extend(other.specs)
        self.gbps.extend(other.gbps)
        self.solo_gbps.extend(other.solo_gbps)
        self.stream_notes.extend(other.stream_notes)
        for name in COUNTER_COLUMNS:
            getattr(self, name).extend(getattr(other, name))
        self.counter_notes.extend(other.counter_notes)
        self.directory_after.extend(other.directory_after)
        self._views.extend([None] * len(other))

    # ------------------------------------------------------------------
    # columnar reads
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.offsets) - 1

    def point_total_gbps(self, row: int) -> float:
        """Total bandwidth of point ``row``, identical to the view's
        ``total_gbps`` (same floats summed in the same order)."""
        return sum(self.gbps[self.offsets[row] : self.offsets[row + 1]])

    def total_gbps(self) -> list[float]:
        """Per-point total bandwidth in decimal GB/s, batch order."""
        offsets = self.offsets
        gbps = self.gbps
        return [
            sum(gbps[offsets[row] : offsets[row + 1]])
            for row in range(len(offsets) - 1)
        ]

    def point_counters(self, row: int) -> dict[str, float | int]:
        """The scalar counter fields of point ``row`` as a plain dict.

        Keys are :data:`COUNTER_COLUMNS` in field order; values are the
        exact stored column entries (bytes, seconds, counts, occupancy
        ratios — the same values ``view(row).counters`` would carry).
        Consumers that only need the numbers — the serving layer's wire
        encoding, report tables — read them here without materializing a
        per-point result object.
        """
        return {name: getattr(self, name)[row] for name in COUNTER_COLUMNS}

    # ------------------------------------------------------------------
    # lazy per-point views
    # ------------------------------------------------------------------

    def _counters_at(self, row: int) -> PerfCounters:
        """A fresh :class:`PerfCounters` for point ``row``.

        Built via ``__new__`` plus a direct ``__dict__`` store — the
        dataclass ``__init__`` is the dominant cost of materializing a
        large batch (see ``analytic._materialize`` history).
        """
        counters = object.__new__(PerfCounters)
        values = {name: getattr(self, name)[row] for name in COUNTER_COLUMNS}
        values["notes"] = list(self.counter_notes[row])
        counters.__dict__ = values
        return counters

    def view(self, row: int) -> BandwidthResult:
        """The :class:`BandwidthResult` for point ``row`` (cached).

        Bit-identical to the scalar evaluator's result for the same
        point: every float is the stored column entry, notes and
        directory states round-trip exactly, and construction uses the
        same fast path as ``BandwidthResult.copy``.
        """
        cached = self._views[row]
        if cached is not None:
            return cached
        new = object.__new__
        rebind = object.__setattr__
        streams = []
        for j in range(self.offsets[row], self.offsets[row + 1]):
            # ``StreamResult`` is frozen, which blocks plain ``__dict__``
            # rebinding; ``object.__setattr__`` bypasses the frozen
            # guard the same way the generated ``__init__`` does.
            stream = new(StreamResult)
            rebind(stream, "__dict__", {
                "spec": self.specs[j],
                "gbps": self.gbps[j],
                "solo_gbps": self.solo_gbps[j],
                "notes": self.stream_notes[j],
            })
            streams.append(stream)
        result = new(BandwidthResult)
        result.streams = tuple(streams)
        result._counters = self._counters_at(row)
        result._counters_source = None
        result.directory_after = self.directory_after[row]
        self._views[row] = result
        return result

    def views(self) -> list[BandwidthResult]:
        """Materialize every point — the compatibility escape hatch for
        callers that still want ``list[BandwidthResult]``."""
        return [self.view(row) for row in range(len(self))]

    # ------------------------------------------------------------------
    # boundaries: equality and pickling
    # ------------------------------------------------------------------

    def _data(self) -> tuple:
        return (
            self.offsets,
            self.specs,
            self.gbps,
            self.solo_gbps,
            self.stream_notes,
            *(getattr(self, name) for name in COUNTER_COLUMNS),
            self.counter_notes,
            self.directory_after,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultColumns):
            return NotImplemented
        return self._data() == other._data()

    def __repr__(self) -> str:
        return (
            f"ResultColumns(points={len(self)}, "
            f"streams={len(self.specs)})"
        )

    def __getstate__(self) -> dict[str, object]:
        # The view cache never crosses a process or disk boundary:
        # views hold caller-mutable counters, and rebuilding them is
        # exactly what lazy views are for.
        state = {name: getattr(self, name) for name in self.__slots__}
        del state["_views"]
        return state

    def __setstate__(self, state: dict[str, object]) -> None:
        for name, value in state.items():
            setattr(self, name, value)
        self._views = [None] * (len(self.offsets) - 1)


def assemble(
    batches: Sequence[ResultColumns],
) -> ResultColumns:
    """Concatenate batches in order into one :class:`ResultColumns`.

    Used by the process-pool backend to fold per-chunk column blocks
    back into grid order without materializing a single view.
    """
    out = ResultColumns()
    for batch in batches:
        out.extend(batch)
    return out
