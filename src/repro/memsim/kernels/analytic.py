"""Batched analytic evaluation: one NumPy pass over a whole sweep axis.

The per-point evaluator (:func:`repro.memsim.evaluation.evaluate`) costs
tens of microseconds per call, almost all of it Python interpretation of
the same short arithmetic chain. A sweep evaluates hundreds of points
against one shared :class:`~repro.memsim.context.EvalContext`, so this
module lays the points out structure-of-arrays — one array per stream
attribute — and runs the chain once over the batch.

Results *stay* structure-of-arrays: the native product of every kernel
here is a :class:`~repro.memsim.kernels.columns.ResultColumns` batch,
and per-point :class:`~repro.memsim.evaluation.BandwidthResult` objects
exist only as lazy views built on demand. Materializing the three result
objects per point used to cost ~4.7 µs under a ~25-30 µs scalar
baseline — the dominant term once the arithmetic was batched — so the
columnar path is what the sweep service, process pool, disk cache, and
experiment consumers all move between themselves.

**Bit-identity contract.** Every elementwise float64 add, subtract,
multiply, divide, minimum and maximum is correctly rounded under
IEEE-754, so applying the *same operations in the same order* across an
array produces bit-identical floats to the scalar chain. Two things
would break that and are therefore kept scalar:

* ``**`` — ``np.power`` routes through a different libm path than
  CPython's ``float.__pow__`` and differs in the last ulp for some
  inputs. All power terms (write-combining pressure, the sub-kilobyte
  and super-4K write-cap factors, the four random-access ramps) are
  computed per *unique* operand with Python ``**`` — by calling the
  exact helper the scalar evaluator calls — and scattered into the
  arrays.
* branches — selected with boolean masks (``np.where``) between
  sub-expressions that each mirror one scalar branch exactly. The
  counter columns reuse the same device: ``app_bytes_read`` is
  ``np.where(is_read, volume, 0.0)``, a pure selection of floats the
  scalar path computes identically.

**Eligibility.** The fast path covers every point family the scalar
evaluator can price: sequential and random patterns, near and far
placement, all three pinning policies, devdax and fsdax mappings, and
multi-stream points (whose per-stream solos are vectorized here and
whose cross-stream interactions run through the exact scalar
``_Evaluator`` methods on the vectorized solos). The residual fallback
set (:func:`classify_point`) is only what the scalar evaluator itself
rejects: empty points, streams naming an unknown or core-less socket,
and PMEM streams targeting a socket with no PMEM DIMMs — the fallback
path surfaces the same error the per-point call would raise.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.memsim import evaluation, random_access
from repro.memsim.address import DaxMode, MappedRegion, fsdax_bandwidth_factor
from repro.memsim.config import DirectoryState
from repro.memsim.constants import INTERLEAVE_SIZE, OPTANE_LINE
from repro.memsim.context import EvalContext
from repro.memsim.kernels.columns import ResultColumns
from repro.memsim.scheduler import HT_YIELD, PinningPolicy
from repro.memsim.spec import Layout, Op, Pattern, StreamSpec
from repro.memsim.topology import MediaKind
from repro.units import GB

if TYPE_CHECKING:
    from typing import Callable

    from repro.memsim.config import MachineConfig
    from repro.memsim.evaluation import BandwidthResult
    from repro.obs import Recorder

__all__ = [
    "FALLBACK_REASONS",
    "classify_point",
    "evaluate_batch",
    "evaluate_batch_columns",
    "evaluate_batch_deferred",
    "evaluate_grid",
    "evaluate_grid_columns",
    "evaluate_points_columns",
    "vector_eligible",
]

#: The reasons :func:`classify_point` can report, in documentation order.
#: Each is also a label of the ``sweep.vector.fallback.*_count`` counter
#: family emitted when a grid point takes the scalar fallback.
FALLBACK_REASONS: tuple[str, ...] = ("empty", "socket", "media")


def classify_point(
    ctx: EvalContext, streams: tuple[StreamSpec, ...]
) -> str | None:
    """Why ``streams`` needs the scalar fallback — or ``None`` if vectorizable.

    Returns one of :data:`FALLBACK_REASONS`:

    * ``"empty"`` — no streams; the scalar evaluator raises
      ``WorkloadError``.
    * ``"socket"`` — a stream names a socket the topology lacks
      (``TopologyError``), or a *sequential* stream issues from a socket
      with no physical cores (``scheduler.placement`` raises; random
      issue is latency-bound and never consults the placement).
    * ``"media"`` — a PMEM stream targets a socket with no PMEM DIMMs.
      Sequential pricing needs the interleave map, and the per-DIMM
      observability probes divide by the interleave ways for *any* PMEM
      stream, so random PMEM points on such sockets are conservatively
      routed through the fallback too — it raises the same error under a
      recorder and prices identically without one.

    Deliberately raises nothing: unpriceable points are *reported*, so
    the fallback surfaces the same error the per-point call would.
    """
    if not streams:
        return "empty"
    socket_ids = ctx.socket_ids
    maps = ctx.interleave_maps
    cores = ctx.physical_core_count
    for spec in streams:
        if (
            spec.issuing_socket not in socket_ids
            or spec.target_socket not in socket_ids
        ):
            return "socket"
        if spec.media is MediaKind.PMEM:
            if maps[(spec.target_socket, MediaKind.PMEM)] is None:
                return "media"
        elif spec.media is not MediaKind.DRAM:
            return "media"
        if spec.pattern is not Pattern.RANDOM and cores[spec.issuing_socket] < 1:
            return "socket"
    return None


def vector_eligible(ctx: EvalContext, streams: tuple[StreamSpec, ...]) -> bool:
    """Whether ``streams`` is evaluable on the batched fast path.

    Thin predicate over :func:`classify_point` (the single source of
    truth for eligibility); kept for callers that only need the boolean.
    """
    return classify_point(ctx, streams) is None


def evaluate_points_columns(
    ctx: EvalContext,
    points: Sequence[tuple[StreamSpec, ...]],
    directory: DirectoryState,
) -> "tuple[ResultColumns, Callable[..., None]]":
    """Evaluate eligible points (any stream count) into one column batch.

    Every point must satisfy :func:`vector_eligible`; callers that cannot
    guarantee that should use :func:`evaluate_grid_columns` instead. Row
    ``i`` of the returned batch is bit-identical to per-point
    :func:`repro.memsim.evaluation.evaluate` of ``points[i]`` against
    ``directory``.

    Per-stream *solo* bandwidths are always computed in one vectorized
    pass, family by family (sequential vs. random chains under masks).
    When every point is single-stream, the cross-stream stage is
    vectorized too (the only interaction a single stream can trigger is
    its own UPI-direction clamp); otherwise each point's interactions run
    through the exact scalar ``_Evaluator`` methods over the vectorized
    solos, which is bit-identical by construction.

    Observability emission is left to the caller: the second element is
    ``emit(recorder, i, *, before=None, after=None)``, which replays
    point ``i``'s evaluation probes straight from the columns (no view is
    materialized). ``before``/``after`` default to the evaluation's own
    directory states; the sweep service overrides them with the
    *normalized* states its cache layer evaluates against, so probe
    emission matches the per-point path exactly. Grid evaluators
    interleave these emissions with scalar fallback evaluations *in
    point order*: float addition is order-sensitive at the last ulp, so
    recorder counters must accumulate in exactly the per-point order.
    """
    specs: list[StreamSpec] = []
    offsets: list[int] = [0]
    multi = False
    for streams in points:
        specs.extend(streams)
        offsets.append(len(specs))
        if len(streams) != 1:
            multi = True
    config = ctx.config
    if not specs:
        return ResultColumns(), lambda recorder, i, **kw: None

    flat = _solo_columns(ctx, specs, directory)
    if multi:
        out = _assemble_general(ctx, specs, offsets, flat, directory)
    else:
        out = _assemble_single(ctx, specs, flat, directory)
    read_amp = flat.read_amp
    write_amp = flat.write_amp

    def emit(
        recorder: "Recorder",
        i: int,
        *,
        before: DirectoryState | None = None,
        after: DirectoryState | None = None,
    ) -> None:
        from repro.obs import probes

        lo = out.offsets[i]
        hi = out.offsets[i + 1]
        probes.emit_evaluation(
            recorder,
            config,
            [
                (out.specs[j], out.gbps[j], read_amp[j], write_amp[j])
                for j in range(lo, hi)
            ],
            out._counters_at(i),
            before if before is not None else directory,
            after if after is not None else out.directory_after[i],
        )

    return out, emit


def evaluate_batch_columns(
    ctx: EvalContext,
    specs: Sequence[StreamSpec],
    directory: DirectoryState,
) -> "tuple[ResultColumns, Callable[..., None]]":
    """Evaluate eligible single-stream points into one column batch.

    Compatibility wrapper over :func:`evaluate_points_columns` for
    callers holding bare specs: point ``i`` is ``(specs[i],)``.
    """
    if not specs:
        return ResultColumns(), lambda recorder, i, **kw: None
    return evaluate_points_columns(ctx, [(spec,) for spec in specs], directory)


def evaluate_batch(
    ctx: EvalContext,
    specs: Sequence[StreamSpec],
    directory: DirectoryState,
    *,
    recorder: "Recorder | None" = None,
) -> "list[BandwidthResult]":
    """:func:`evaluate_batch_columns` materialized to per-point results.

    Compatibility wrapper for callers that want objects; batch-native
    consumers should take the columns directly.
    """
    if not specs:
        return []
    columns, emit = evaluate_batch_columns(ctx, specs, directory)
    if recorder is not None and recorder.enabled:
        for i in range(len(columns)):
            emit(recorder, i)
    return columns.views()


def evaluate_batch_deferred(
    ctx: EvalContext,
    specs: Sequence[StreamSpec],
    directory: DirectoryState,
) -> "tuple[list[BandwidthResult], Callable[..., None]]":
    """:func:`evaluate_batch` with emission left to the caller.

    Compatibility wrapper over :func:`evaluate_batch_columns` returning
    materialized views plus the same ``emit(recorder, i)`` callable.
    """
    if not specs:
        return [], lambda recorder, i, **kw: None
    columns, emit = evaluate_batch_columns(ctx, specs, directory)
    return columns.views(), emit


class _FlatSolos:
    """Vectorized per-stream solo results, flat across all points.

    The array fields mirror :class:`repro.memsim.evaluation._Solo`
    bitwise: ``gbps`` is the solo bandwidth *before* cross-stream
    interactions, ``issue``/``cap`` the issue- and media-side terms the
    occupancy counters are computed from (for random streams both equal
    ``gbps``, as in the scalar path), and the amplification arrays ride
    along for recorder emission.
    """

    __slots__ = (
        "gbps", "solo", "issue", "cap", "read_amp", "write_amp",
        "volume", "is_read", "is_pmem", "far", "notes",
        "pages", "fault_seconds", "any_far",
    )

    def __init__(self, n: int) -> None:
        self.gbps = np.empty(n, dtype=np.float64)
        self.solo = np.empty(n, dtype=np.float64)
        self.issue = np.empty(n, dtype=np.float64)
        self.cap = np.empty(n, dtype=np.float64)
        self.read_amp: list[float] = [1.0] * n
        self.write_amp: list[float] = [1.0] * n
        self.volume = np.empty(n, dtype=np.float64)
        self.is_read = np.empty(n, dtype=bool)
        self.is_pmem = np.empty(n, dtype=bool)
        self.far = np.empty(n, dtype=bool)
        self.notes: list[tuple[str, ...]] = [()] * n
        self.pages: list[int] = [0] * n
        self.fault_seconds: list[float] = [0.0] * n
        self.any_far = False


def _solo_columns(
    ctx: EvalContext,
    specs: Sequence[StreamSpec],
    directory: DirectoryState,
) -> _FlatSolos:
    """The vectorized solo pass over all streams of all points.

    One Python row loop gathers per-stream operands (with the ``**``
    terms memoized per unique operand through the scalar helpers), then
    the sequential and random families each run their arithmetic chain
    once over the family's rows and scatter into flat arrays.
    """
    cal = ctx.config.calibration
    parts = ctx.components
    prefetcher = parts.prefetcher
    wc = parts.write_combining
    sched_cpu = parts.scheduler.cpu
    core_count = ctx.physical_core_count
    tables = ctx.random_tables
    pmem_maps = {
        socket: ctx.interleave_maps[(socket, MediaKind.PMEM)]
        for socket in ctx.socket_ids
    }
    small_region_threshold = cal.dram.small_region_threshold
    fsdax_factor = fsdax_bandwidth_factor(cal.pmem.devdax_advantage)
    page_fault_cost = cal.pmem.page_fault_cost

    n = len(specs)
    flat = _FlatSolos(n)
    # Rows are accumulated as one tuple per stream and transposed with
    # ``zip(*rows)`` — one append per stream plus a C-level transpose
    # beats both per-element ndarray stores and parallel per-column
    # appends, and this loop is the batch's Python-side cost floor.
    seq_rows: list[tuple] = []
    seq_idx: list[int] = []
    rnd_rows: list[tuple] = []
    rnd_idx: list[int] = []
    # Scalar companions are computed per unique operand with the exact
    # code the per-point evaluator runs (`**` is not vectorizable
    # bit-identically): write-combining efficiency, the write-cap size
    # factor, the four random ramps, fsdax page-fault notes, and the
    # directory warmth of each far-read direction.
    eff_memo: dict[tuple[int, int], float] = {}
    pow_memo: dict[int, float] = {}
    ramp_memo: dict[tuple[bool, bool, int], float] = {}
    warm_memo: dict[tuple[int, int], bool] = {}
    fsdax_memo: dict[int, tuple[int, float, str]] = {}

    volume_l = flat.volume
    notes_l = flat.notes
    for j, spec in enumerate(specs):
        spec_threads = spec.threads
        spec_size = spec.access_size
        read = spec.op is Op.READ
        pmem = spec.media is MediaKind.PMEM
        far = spec.issuing_socket != spec.target_socket
        none = spec.pinning is PinningPolicy.NONE
        numa = spec.pinning is PinningPolicy.NUMA_REGION
        volume_l[j] = float(spec.total_bytes)
        flat.is_read[j] = read
        flat.is_pmem[j] = pmem
        flat.far[j] = far
        if far:
            flat.any_far = True

        # fsdax: the bandwidth factor applies to any non-devdax PMEM
        # mapping that is not prefaulted; the fault counters additionally
        # require DaxMode.FSDAX (mirroring the scalar conditions, which
        # today coincide because FSDAX is the only other mode).
        fs_band = pmem and spec.dax_mode is not DaxMode.DEVDAX and not spec.prefaulted
        fsdax_note = ""
        if fs_band:
            entry = fsdax_memo.get(spec.region_bytes)
            if entry is None:
                region = MappedRegion(
                    size=spec.region_bytes,
                    dax_mode=spec.dax_mode,
                    prefaulted=False,
                )
                pages = region.pages
                fault_cost = region.fault_cost(page_fault_cost)
                entry = (
                    pages,
                    fault_cost,
                    f"fsdax: {pages} first-touch page faults "
                    f"(~{fault_cost:.3f}s if cold)",
                )
                fsdax_memo[spec.region_bytes] = entry
            fsdax_note = entry[2]
            if spec.dax_mode is DaxMode.FSDAX:
                flat.pages[j] = entry[0]
                flat.fault_seconds[j] = entry[1]

        if spec.pattern is Pattern.RANDOM:
            wc_eff2 = wamp = 1.0
            if pmem and not read:
                key = (spec_threads, max(spec_size, 2048))
                wc_eff2 = eff_memo.get(key)
                if wc_eff2 is None:
                    wc_eff2 = wc.efficiency(key[0], key[1])
                    eff_memo[key] = wc_eff2
                key = (spec_threads, spec_size)
                eff = eff_memo.get(key)
                if eff is None:
                    eff = wc.efficiency(spec_threads, spec_size)
                    eff_memo[key] = eff
                wamp = 1.0 / eff
            rkey = (pmem, read, spec_size)
            ramp = ramp_memo.get(rkey)
            if ramp is None:
                if pmem:
                    ramp = (
                        random_access.pmem_random_read_ramp(spec_size)
                        if read
                        else random_access.pmem_random_write_ramp(spec_size)
                    )
                else:
                    ramp = (
                        random_access.dram_random_read_ramp(spec_size)
                        if read
                        else random_access.dram_random_write_ramp(spec_size)
                    )
                ramp_memo[rkey] = ramp
            notes: tuple[str, ...] = ()
            if none:
                notes = ("unpinned random access",)
            if far:
                notes += ("far random access: UPI-bound",)
            if fs_band:
                notes += (fsdax_note,)
            if notes:
                notes_l[j] = notes
            rnd_idx.append(j)
            rnd_rows.append((
                spec_threads,
                spec_size,
                core_count[spec.issuing_socket],
                read,
                pmem,
                numa,
                none,
                far,
                spec.region_bytes <= small_region_threshold,
                fs_band,
                wc_eff2,
                wamp,
                ramp,
            ))
            continue

        if pmem:
            interleave = pmem_maps[spec.target_socket]
            way_count = interleave.ways
            granularity = interleave.granularity
            if read:
                eff = factor = 1.0
            else:
                key = (spec_threads, spec_size)
                eff = eff_memo.get(key)
                if eff is None:
                    eff = wc.efficiency(spec_threads, spec_size)
                    eff_memo[key] = eff
                factor = pow_memo.get(spec_size)
                if factor is None:
                    factor = _write_cap_size_factor(spec_size)
                    pow_memo[spec_size] = factor
        else:
            way_count = granularity = 1
            eff = factor = 1.0
        warm = False
        notes = ()
        if none:
            notes = (
                ("unpinned: scheduler migrations keep remapping cold",)
                if read
                else ("unpinned: cross-socket placements halve write bandwidth",)
            )
        elif far:
            if read:
                if not pmem:
                    notes = ("far DRAM read: UPI-bound",)
                else:
                    pair = (spec.issuing_socket, spec.target_socket)
                    warm = warm_memo.get(pair)
                    if warm is None:
                        warm = directory.is_warm(*pair)
                        warm_memo[pair] = warm
                    notes = (
                        ("far PMEM read: directory warm",)
                        if warm
                        else ("far PMEM read: first run, directory cold",)
                    )
            elif pmem:
                notes = ("far PMEM write: ntstore degrades to read-modify-write",)
        if fs_band:
            notes += (fsdax_note,)
        if notes:
            notes_l[j] = notes
        seq_idx.append(j)
        seq_rows.append((
            spec_threads,
            spec_size,
            core_count[spec.issuing_socket],
            way_count,
            granularity,
            read,
            pmem,
            spec.layout is Layout.GROUPED,
            numa,
            none,
            far,
            warm,
            fs_band,
            eff,
            factor,
        ))

    if seq_rows:
        _seq_chain(
            flat, seq_rows, seq_idx, cal, prefetcher, sched_cpu, ctx, fsdax_factor
        )
    if rnd_rows:
        _rnd_chain(flat, rnd_rows, rnd_idx, cal, tables, sched_cpu, ctx, fsdax_factor)
    return flat


def _seq_chain(
    flat: _FlatSolos,
    rows: list[tuple],
    idx: list[int],
    cal,
    prefetcher,
    sched_cpu,
    ctx: EvalContext,
    fsdax_factor: float,
) -> None:
    """The sequential-family arithmetic chain, scattered into ``flat``.

    Mirrors ``_Evaluator._solo_sequential`` (and the helpers it calls)
    operation for operation; see the module docstring for why each branch
    is a masked selection.
    """
    (
        threads_c, size_c, physical_c, ways_c, gran_c, read_c, pmem_c,
        grouped_c, numa_c, none_c, far_c, warm_c, fsdax_c, wc_eff_c, cap_pow_c,
    ) = zip(*rows)
    m = len(rows)
    threads = np.array(threads_c, dtype=np.int64)
    size = np.array(size_c, dtype=np.int64)
    physical = np.array(physical_c, dtype=np.int64)
    ways = np.array(ways_c, dtype=np.int64)
    gran = np.array(gran_c, dtype=np.int64)
    is_read = np.array(read_c, dtype=bool)
    is_pmem = np.array(pmem_c, dtype=bool)
    grouped = np.array(grouped_c, dtype=bool)
    numa = np.array(numa_c, dtype=bool)
    none = np.array(none_c, dtype=bool)
    far = np.array(far_c, dtype=bool)
    warm = np.array(warm_c, dtype=bool)
    fsdax = np.array(fsdax_c, dtype=bool)
    wc_eff = np.array(wc_eff_c, dtype=np.float64)
    cap_pow = np.array(cap_pow_c, dtype=np.float64)
    any_none = bool(none.any())
    any_far = bool(far.any())
    any_fsdax = bool(fsdax.any())

    threads_f = threads.astype(np.float64)
    ways_f = ways.astype(np.float64)

    with np.errstate(divide="ignore", invalid="ignore"):
        # --- per-thread issue rate (_per_thread_rate / _issue_bandwidth)
        overhead = np.where(
            is_pmem,
            np.where(is_read, cal.pmem.read_op_overhead, cal.pmem.write_op_overhead),
            np.where(is_read, cal.dram.read_op_overhead, cal.dram.write_op_overhead),
        )
        stream_rate = np.where(
            is_pmem,
            np.where(is_read, cal.pmem.read_stream_rate, cal.pmem.write_stream_rate),
            np.where(is_read, cal.dram.read_stream_rate, cal.dram.write_stream_rate),
        )
        per_op_seconds = overhead + size / (stream_rate * GB)
        per_thread = size / per_op_seconds / GB
        if any_far:
            # Blocking far stores see the full UPI round trip (§4.4).
            per_thread = np.where(
                far & ~is_read, per_thread * cal.pmem.far_write_thread_factor, per_thread
            )
        effective_issue = (
            np.minimum(threads, physical) + np.maximum(0, threads - physical) * HT_YIELD
        )
        issue = np.where(is_read, effective_issue, threads_f) * per_thread

        # --- grouped-sequential prefetcher dip (grouped_sequential_factor).
        # The dip window is defined against INTERLEAVE_SIZE for every
        # media kind, independent of any per-socket map granularity.
        if prefetcher.enabled:
            gsf = np.where(
                (size >= 1024) & (size < INTERLEAVE_SIZE),
                prefetcher.cpu.prefetch_dip_factor,
                1.0,
            )
        else:
            gsf = np.ones(m, dtype=np.float64)

        # --- read media cap (_sequential_read_media_cap)
        per_dimm_read = cal.pmem.seq_read_max / ways
        window = threads * size
        grouped_parallelism = np.minimum(ways_f, 1.0 + window / gran)
        read_cap_grouped = (per_dimm_read * grouped_parallelism) * gsf
        read_cap_individual = per_dimm_read * np.minimum(ways, 2 * threads)
        read_cap_dram = np.where(grouped, cal.dram.seq_read_max * gsf, cal.dram.seq_read_max)
        read_cap = np.where(
            is_pmem,
            np.where(grouped, read_cap_grouped, read_cap_individual),
            read_cap_dram,
        )

        # --- write media cap (_sequential_write_media_cap)
        per_dimm_write = cal.pmem.seq_write_max / ways
        write_parallelism = np.where(
            grouped,
            np.minimum(ways_f, 2.0 + window / gran),
            np.minimum(ways, 2 * threads).astype(np.float64),
        )
        small_factor = np.where(
            grouped & (size < OPTANE_LINE),
            np.maximum(0.45, size / OPTANE_LINE),
            1.0,
        )
        write_cap_pmem = ((per_dimm_write * write_parallelism) * wc_eff) * small_factor
        write_cap_pmem = write_cap_pmem * cap_pow
        write_cap = np.where(is_pmem, write_cap_pmem, cal.dram.seq_write_max)
        write_amp = 1.0 / wc_eff
        write_amp = np.where(
            grouped & (size < OPTANE_LINE),
            write_amp * (OPTANE_LINE / size),
            write_amp,
        )
        write_amp = np.where(is_pmem & ~is_read, write_amp, 1.0)

        # --- compose (_solo_sequential)
        media_cap = np.where(is_read, read_cap, write_cap)
        solo_gbps = np.minimum(issue, media_cap)
        if prefetcher.enabled:
            shared = np.minimum(1.0, (threads - physical) / physical)
            thread_factor = np.where(
                threads <= physical,
                1.0,
                1.0 - prefetcher.cpu.ht_imbalance_penalty * (4.0 * shared * (1.0 - shared)),
            )
        else:
            thread_factor = np.where(
                threads < 8, prefetcher.cpu.no_prefetch_low_thread_factor, 1.0
            )
        thread_factor = np.where(is_read, thread_factor, 1.0)
        pinned = np.where(
            numa & (threads > physical), sched_cpu.numa_pinning_overhead, 1.0
        ) * np.where(numa & ~is_read, sched_cpu.numa_pinning_write_overhead, 1.0)
        after_pinning = solo_gbps * pinned
        if any_none:
            # Unpinned reads collapse onto the cold-far envelope; DRAM
            # unpinned reads halve instead (§3.4); unpinned writes pay
            # the scheduler's cross-socket write factor (Fig. 9).
            unp_ramp = np.minimum(1.0, threads / cal.pmem.cold_far_read_best_threads)
            envelope = (
                cal.pmem.cold_far_read_max * unp_ramp
            ) * sched_cpu.unpinned_read_factor
            envelope = np.where(is_pmem, envelope, cal.dram.seq_read_max * 0.5)
            unp_read = np.minimum(solo_gbps, envelope)
            unp_write = solo_gbps * sched_cpu.unpinned_write_factor
            after_pinning = np.where(
                none, np.where(is_read, unp_read, unp_write), after_pinning
            )
        gbps = after_pinning * thread_factor

        if any_far:
            # --- far ceilings (_apply_far_ceilings), pinned far streams
            # only: unpinned points already collapsed onto the envelope.
            best = cal.pmem.cold_far_read_best_threads
            cold_ramp = np.minimum(1.0, threads / best)
            cold_decay = 1.0 + cal.pmem.cold_far_read_decay * np.maximum(
                0, threads - best
            )
            cold_cap = cal.pmem.cold_far_read_max * cold_ramp / cold_decay
            read_far_cap = np.where(
                is_pmem,
                np.where(warm, ctx.warm_far_read_cap_pmem, cold_cap),
                ctx.warm_far_read_cap_dram,
            )
            far_cap = np.where(
                is_read,
                read_far_cap,
                np.where(is_pmem, cal.pmem.far_write_max, ctx.upi_data_cap),
            )
            far_pinned = far & ~none
            gbps = np.where(far_pinned, np.minimum(gbps, far_cap), gbps)
            # §4.4 reports *up to* 10x internal far-write amplification.
            far_amp_max = cal.pmem.far_write_amplification_max
            amp_adjust = 1.0 + (far_amp_max - 1.0) * np.minimum(1.0, threads / 18.0)
            write_amp = np.where(
                far_pinned & ~is_read,
                np.minimum(write_amp * amp_adjust, far_amp_max),
                write_amp,
            )
        if any_fsdax:
            gbps = np.where(fsdax, gbps * fsdax_factor, gbps)

    rows_at = np.array(idx, dtype=np.intp)
    flat.gbps[rows_at] = gbps
    flat.solo[rows_at] = solo_gbps
    flat.issue[rows_at] = issue
    flat.cap[rows_at] = media_cap
    if bool((is_pmem & ~is_read).any()):
        amp_l = write_amp.tolist()
        w_amp = flat.write_amp
        for k, j in enumerate(idx):
            w_amp[j] = amp_l[k]


def _rnd_chain(
    flat: _FlatSolos,
    rows: list[tuple],
    idx: list[int],
    cal,
    tables,
    sched_cpu,
    ctx: EvalContext,
    fsdax_factor: float,
) -> None:
    """The random-family arithmetic chain, scattered into ``flat``.

    Mirrors ``_Evaluator._solo_random`` plus the :mod:`random_access`
    issue/cap formulas operation for operation, with the ``**`` ramps
    pre-computed per unique access size in the row loop. The scalar path
    sets ``issue_gbps`` and ``media_cap_gbps`` to the final solo
    bandwidth for random streams, so the occupancy counters see ``rho ==
    1`` exactly as the per-point evaluator does.
    """
    (
        threads_c, size_c, physical_c, read_c, pmem_c, numa_c, none_c,
        far_c, small_c, fsdax_c, wc_eff2_c, wamp_c, ramp_c,
    ) = zip(*rows)
    threads = np.array(threads_c, dtype=np.int64)
    size = np.array(size_c, dtype=np.int64)
    physical = np.array(physical_c, dtype=np.int64)
    is_read = np.array(read_c, dtype=bool)
    is_pmem = np.array(pmem_c, dtype=bool)
    numa = np.array(numa_c, dtype=bool)
    none = np.array(none_c, dtype=bool)
    far = np.array(far_c, dtype=bool)
    small_region = np.array(small_c, dtype=bool)
    fsdax = np.array(fsdax_c, dtype=bool)
    wc_eff2 = np.array(wc_eff2_c, dtype=np.float64)
    wamp = np.array(wamp_c, dtype=np.float64)
    ramp = np.array(ramp_c, dtype=np.float64)

    with np.errstate(divide="ignore", invalid="ignore"):
        sub_line = size < OPTANE_LINE
        sub_ratio = size / OPTANE_LINE
        # --- PMEM caps and issue (pmem_random_{read,write}_*)
        pmem_read_cap = tables.pmem_read_peak_gbps * ramp
        pmem_read_cap = np.where(sub_line, pmem_read_cap * sub_ratio, pmem_read_cap)
        pmem_read_issue = (
            threads * size
            / (cal.pmem.random_read_latency + size / tables.pmem_read_stream_bps)
            / GB
        )
        pmem_write_cap = (tables.pmem_write_peak_gbps * ramp) * wc_eff2
        pmem_write_cap = np.where(sub_line, pmem_write_cap * sub_ratio, pmem_write_cap)
        pmem_write_issue = (
            threads * size
            / (tables.pmem_write_overhead_seconds + size / tables.pmem_write_stream_bps)
            / GB
        )
        # --- DRAM caps and issue (dram_random_{read,write})
        dram_read_peak = np.where(
            small_region, tables.dram_read_small_peak_gbps, tables.dram_read_large_peak_gbps
        )
        dram_read_cap = dram_read_peak * ramp
        dram_read_issue = (
            threads * size
            / (cal.dram.random_read_latency + size / tables.dram_read_stream_bps)
            / GB
        )
        dram_write_peak = np.where(
            small_region, tables.dram_write_small_peak_gbps, tables.dram_write_large_peak_gbps
        )
        dram_write_cap = dram_write_peak * ramp
        dram_write_issue = (
            threads * size
            / (cal.dram.random_read_latency + size / tables.dram_write_stream_bps)
            / GB
        )
        gbps = np.where(
            is_pmem,
            np.where(
                is_read,
                np.minimum(pmem_read_issue, pmem_read_cap),
                np.minimum(pmem_write_issue, pmem_write_cap),
            ),
            np.where(
                is_read,
                np.minimum(dram_read_issue, dram_read_cap),
                np.minimum(dram_write_issue, dram_write_cap),
            ),
        )
        # --- amplification (_solo_random)
        read_amp = np.where(
            is_pmem & is_read & sub_line, OPTANE_LINE / size, 1.0
        )
        write_amp = np.where(is_pmem & ~is_read, wamp, 1.0)
        # --- pinning: NONE flat-rates to 0.6; NUMA pays pinned_factor.
        numa_factor = np.where(
            numa & (threads > physical), sched_cpu.numa_pinning_overhead, 1.0
        ) * np.where(numa & ~is_read, sched_cpu.numa_pinning_write_overhead, 1.0)
        pin = np.where(none, 0.6, numa_factor)
        gbps = gbps * pin
        # --- far clamp: random far traffic is UPI-bound regardless of
        # pinning (and uses the PMEM caps even for DRAM, as the scalar
        # path does).
        if bool(far.any()):
            far_cap = np.where(
                is_read, ctx.warm_far_read_cap_pmem, cal.pmem.far_write_max
            )
            gbps = np.where(far, np.minimum(gbps, far_cap), gbps)
        if bool(fsdax.any()):
            gbps = np.where(fsdax, gbps * fsdax_factor, gbps)

    rows_at = np.array(idx, dtype=np.intp)
    flat.gbps[rows_at] = gbps
    flat.solo[rows_at] = gbps
    flat.issue[rows_at] = gbps
    flat.cap[rows_at] = gbps
    r_amp = flat.read_amp
    w_amp = flat.write_amp
    read_amp_l = read_amp.tolist()
    write_amp_l = write_amp.tolist()
    for k, j in enumerate(idx):
        r_amp[j] = read_amp_l[k]
        w_amp[j] = write_amp_l[k]


def _assemble_single(
    ctx: EvalContext,
    specs: Sequence[StreamSpec],
    flat: _FlatSolos,
    directory: DirectoryState,
) -> ResultColumns:
    """Fully vectorized cross-stream stage for all-single-stream batches.

    A single stream can trigger exactly one interaction: its own
    UPI-direction capacity clamp (``_apply_upi_capacity`` with a
    one-element group, which multiplies by ``cap/total`` — replicated
    here as the same multiply, not an assignment). The counter columns
    are the scalar collector's branch arms as mask selections.
    """
    cal = ctx.config.calibration
    n = len(specs)
    gbps = flat.gbps
    is_read = flat.is_read
    is_pmem = flat.is_pmem
    far = flat.far
    volume = flat.volume
    notes = flat.notes
    write_amp_l = flat.write_amp

    with np.errstate(divide="ignore", invalid="ignore"):
        if flat.any_far:
            upi_cap = ctx.upi_data_cap
            over = far & (gbps > upi_cap)
            if bool(over.any()):
                gbps = np.where(over, gbps * (upi_cap / gbps), gbps)
                for j in np.nonzero(over)[0].tolist():
                    notes[j] = notes[j] + ("UPI direction saturated",)
        occupancy_service = np.maximum(flat.cap, 1e-9)  # simlint: ignore[unit-literal] -- epsilon guard, not a unit
        rho = np.minimum(flat.issue / occupancy_service, 1.0)
        queue = rho + rho * rho / (2.0 * (1.0 - rho))
        occupancy = np.where(rho >= 1.0, 1.0, np.minimum(1.0, queue / (1.0 + queue)))
        # Counter columns are mask selections over the arrays above —
        # the same ``x if read else 0.0`` split the scalar collector
        # performs, applied to identical floats.
        read_amp = np.array(flat.read_amp, dtype=np.float64)
        write_amp = np.array(write_amp_l, dtype=np.float64)
        media_read = np.where(
            is_read,
            volume * read_amp,
            np.where(is_pmem & (write_amp > 1.0), volume * (write_amp - 1.0), 0.0),
        )
        media_written = np.where(is_read, 0.0, volume * write_amp)
        zeros = np.zeros(n, dtype=np.float64)
        app_read = np.where(is_read, volume, zeros)
        app_written = np.where(is_read, zeros, volume)
        rpq = np.where(is_read, occupancy, zeros)
        wpq = np.where(is_read, zeros, occupancy)
        upi_bytes = np.where(far, volume, zeros)
        if flat.any_far:
            # One direction, no reverse payload: the scalar collector's
            # ``min(1.0, max([utilization + 0.0]))`` reduces to the
            # utilization itself.
            util = np.minimum(
                1.0,
                (gbps / (1.0 - cal.upi.metadata_fraction)) / cal.upi.raw_per_direction,
            )
            upi_util = np.where(far, util, zeros)
        else:
            upi_util = zeros

    afters: list[DirectoryState] = [directory] * n
    if flat.any_far:
        touch_memo: dict[tuple[int, int], DirectoryState] = {}
        for j in np.nonzero(far)[0].tolist():
            spec = specs[j]
            pair = (spec.issuing_socket, spec.target_socket)
            after = touch_memo.get(pair)
            if after is None:
                after = directory.touch(*pair)
                touch_memo[pair] = after
            afters[j] = after

    out = ResultColumns()
    out.offsets = list(range(n + 1))
    out.specs = list(specs)
    out.gbps = gbps.tolist()
    out.solo_gbps = flat.solo.tolist()
    out.stream_notes = notes
    out.app_bytes_read = app_read.tolist()
    out.app_bytes_written = app_written.tolist()
    out.media_bytes_read = media_read.tolist()
    out.media_bytes_written = media_written.tolist()
    out.upi_bytes = upi_bytes.tolist()
    out.upi_utilization = upi_util.tolist()
    out.page_faults = flat.pages
    out.page_fault_seconds = flat.fault_seconds
    out.rpq_occupancy = rpq.tolist()
    out.wpq_occupancy = wpq.tolist()
    out.counter_notes = list(notes)
    out.directory_after = afters
    out._views = [None] * n
    return out


def _assemble_general(
    ctx: EvalContext,
    specs: Sequence[StreamSpec],
    offsets: list[int],
    flat: _FlatSolos,
    directory: DirectoryState,
) -> ResultColumns:
    """Cross-stream stage for batches containing multi-stream points.

    Rebuilds a point's :class:`_Solo` objects from the vectorized arrays
    (bit-identical to the scalar solos by construction) and runs them
    through the *actual* scalar ``_Evaluator`` interaction methods — the
    one place the vector path reuses scalar code instead of mirroring
    it, because cross-stream group logic is data-dependent Python either
    way. Interactions that cannot fire for a point's stream shape are
    skipped via cheap conservative flags, and points where *no*
    interaction fires skip the object rebuild entirely: their rows are
    read straight off the flat arrays.

    Counters are likewise assembled from per-stream component columns
    computed once per batch (the same mask selections as the
    all-single-stream path — interactions change only ``gbps`` and
    notes, never the issue/cap terms or amplifications those columns
    depend on), accumulated per point in stream order so every float
    fold matches the scalar collector's. Only points containing a far
    stream go through ``_collect_counters`` itself, for the UPI
    direction-utilization bookkeeping.
    """
    ev = evaluation._Evaluator(ctx, directory)
    gbps_l = flat.gbps.tolist()
    issue_l = flat.issue.tolist()
    cap_l = flat.cap.tolist()
    solo_l = flat.solo.tolist()
    read_amp_l = flat.read_amp
    write_amp_l = flat.write_amp
    notes_l = flat.notes
    volume_l = flat.volume.tolist()
    pages_l = flat.pages
    fault_l = flat.fault_seconds
    is_read_l = flat.is_read.tolist()
    far_l = flat.far.tolist()
    seq_l = [s.pattern is Pattern.SEQUENTIAL for s in specs]
    sock_l = [s.issuing_socket for s in specs]

    with np.errstate(divide="ignore", invalid="ignore"):
        # Identical to ``_Imc.occupancy`` over ``(issue, max(cap, eps))``.
        service = np.maximum(flat.cap, 1e-9)  # simlint: ignore[unit-literal] -- epsilon guard, not a unit
        rho = np.minimum(flat.issue / service, 1.0)
        queue = rho + rho * rho / (2.0 * (1.0 - rho))
        occ = np.where(rho >= 1.0, 1.0, np.minimum(1.0, queue / (1.0 + queue)))
        read_amp_a = np.array(read_amp_l, dtype=np.float64)
        write_amp_a = np.array(write_amp_l, dtype=np.float64)
        media_read_c = np.where(
            flat.is_read,
            flat.volume * read_amp_a,
            np.where(
                flat.is_pmem & (write_amp_a > 1.0),
                flat.volume * (write_amp_a - 1.0),
                0.0,
            ),
        )
        media_written_c = np.where(flat.is_read, 0.0, flat.volume * write_amp_a)
    occ_l = occ.tolist()
    media_read_l = media_read_c.tolist()
    media_written_l = media_written_c.tolist()

    out = ResultColumns()
    out_specs = out.specs
    out_gbps = out.gbps
    out_solo = out.solo_gbps
    out_notes = out.stream_notes
    make_solo = evaluation._Solo
    for p in range(len(offsets) - 1):
        lo = offsets[p]
        hi = offsets[p + 1]
        point_far = False
        for j in range(lo, hi):
            if far_l[j]:
                point_far = True
                break
        if hi - lo == 1:
            interact = point_far
            mixed_only = False
        else:
            seq_reads = 0
            far_reads = 0
            has_read = has_write = False
            first_sock = sock_l[lo]
            multi_issuer = False
            for j in range(lo, hi):
                if is_read_l[j]:
                    has_read = True
                    if seq_l[j]:
                        seq_reads += 1
                    if far_l[j]:
                        far_reads += 1
                else:
                    has_write = True
                if sock_l[j] != first_sock:
                    multi_issuer = True
            prefetch = seq_reads > 1
            mixed = has_read and has_write
            far_far = far_reads > 1
            interact = prefetch or mixed or multi_issuer or far_far or point_far
            mixed_only = mixed and not (
                prefetch or multi_issuer or far_far or point_far
            )
        row_base = len(out_specs)
        if mixed_only and hi - lo == 2:
            # The dominant mixed shape (Fig. 11): one near read + one
            # near write. ``_apply_mixed_interference`` reduces to a
            # single ``resolve`` when both streams share a device group
            # — replicated here with the identical float operations —
            # and to a no-op when they don't.
            jr, jw = (lo, lo + 1) if is_read_l[lo] else (lo + 1, lo)
            read_spec = specs[jr]
            write_spec = specs[jw]
            if (read_spec.target_socket, read_spec.media) == (
                write_spec.target_socket,
                write_spec.media,
            ):
                media = read_spec.media
                read_total = gbps_l[jr]
                write_total = gbps_l[jw]
                # Inlined ``mixed_model.resolve`` (same floats, same
                # order), skipping the outcome object.
                mp = ctx.mixed_params[media]
                write_demand = min(1.0, write_total / mp.write_max_gbps)
                read_demand = min(1.0, read_total / mp.read_max_gbps)
                read_gbps = read_total * (
                    1.0 / (1.0 + mp.read_coeff * write_demand)
                )
                write_gbps = write_total * (
                    1.0 / (1.0 + mp.write_coeff * read_demand ** mp.write_exponent)
                )
                utilization = (
                    read_gbps / mp.read_max_gbps + write_gbps / mp.write_max_gbps
                )
                if utilization > 1.0:
                    read_gbps /= utilization
                    write_gbps /= utilization
                read_scale = read_gbps / read_total if read_total > 0 else 1.0
                write_scale = write_gbps / write_total if write_total > 0 else 1.0
                note = "mixed read/write interference"
                for j, scale in ((lo, read_scale if lo == jr else write_scale),
                                 (lo + 1, read_scale if lo + 1 == jr else write_scale)):
                    out_specs.append(specs[j])
                    out_gbps.append(gbps_l[j] * scale)
                    out_notes.append(notes_l[j] + (note,))
                out_solo.extend(solo_l[lo:hi])
                interact = False
                rows_done = True
            else:
                # Different device groups: the scalar method loops two
                # one-sided groups and changes nothing.
                interact = False
                rows_done = False
        else:
            rows_done = False
        if rows_done:
            pass
        elif interact:
            solos = [
                make_solo(
                    specs[j],
                    gbps_l[j],
                    issue_l[j],
                    cap_l[j],
                    read_amp_l[j],
                    write_amp_l[j],
                    list(notes_l[j]),
                )
                for j in range(lo, hi)
            ]
            if hi - lo == 1:
                ev._apply_upi_capacity(solos)
            else:
                if prefetch:
                    ev._apply_multi_stream_prefetch(solos)
                if mixed:
                    ev._apply_mixed_interference(solos)
                if multi_issuer:
                    ev._apply_shared_target(solos)
                if far_far:
                    ev._apply_far_far_pollution(solos)
                if point_far:
                    ev._apply_upi_capacity(solos)
                if multi_issuer:
                    ev._apply_dram_package_efficiency(solos)
            for solo in solos:
                out_specs.append(solo.spec)
                out_gbps.append(solo.gbps)
                out_notes.append(tuple(solo.notes))
            out_solo.extend(solo_l[lo:hi])
        else:
            out_specs.extend(specs[lo:hi])
            out_gbps.extend(gbps_l[lo:hi])
            out_notes.extend(notes_l[lo:hi])
            out_solo.extend(solo_l[lo:hi])
        if point_far:
            # ``_collect_counters`` for the UPI payload/direction math;
            # also the only case the directory advances.
            counters = ev._collect_counters(solos)
            after = directory
            for solo in solos:
                if solo.spec.far:
                    after = after.touch(
                        solo.spec.issuing_socket, solo.spec.target_socket
                    )
            out.app_bytes_read.append(counters.app_bytes_read)
            out.app_bytes_written.append(counters.app_bytes_written)
            out.media_bytes_read.append(counters.media_bytes_read)
            out.media_bytes_written.append(counters.media_bytes_written)
            out.upi_bytes.append(counters.upi_bytes)
            out.upi_utilization.append(counters.upi_utilization)
            out.page_faults.append(counters.page_faults)
            out.page_fault_seconds.append(counters.page_fault_seconds)
            out.rpq_occupancy.append(counters.rpq_occupancy)
            out.wpq_occupancy.append(counters.wpq_occupancy)
            out.counter_notes.append(tuple(counters.notes))
            out.directory_after.append(after)
        else:
            # Near-only point: fold the precomputed per-stream components
            # in stream order, exactly as the scalar collector would.
            app_read = app_written = 0.0
            media_read = media_written = 0.0
            rpq = wpq = 0.0
            faults = 0
            fault_seconds = 0.0
            counter_notes: tuple[str, ...] = ()
            for j in range(lo, hi):
                if is_read_l[j]:
                    app_read += volume_l[j]
                    media_read += media_read_l[j]
                    rpq = max(rpq, occ_l[j])
                else:
                    app_written += volume_l[j]
                    media_written += media_written_l[j]
                    media_read += media_read_l[j]
                    wpq = max(wpq, occ_l[j])
                faults += pages_l[j]
                fault_seconds += fault_l[j]
            for k in range(row_base, row_base + (hi - lo)):
                counter_notes += out_notes[k]
            out.app_bytes_read.append(app_read)
            out.app_bytes_written.append(app_written)
            out.media_bytes_read.append(media_read)
            out.media_bytes_written.append(media_written)
            out.upi_bytes.append(0.0)
            out.upi_utilization.append(0.0)
            out.page_faults.append(faults)
            out.page_fault_seconds.append(fault_seconds)
            out.rpq_occupancy.append(rpq)
            out.wpq_occupancy.append(wpq)
            out.counter_notes.append(counter_notes)
            out.directory_after.append(directory)
        out.offsets.append(len(out_specs))
        out._views.append(None)
    return out


def _write_cap_size_factor(access_size: int) -> float:
    """The sub-kilobyte / super-4K write-cap factor, with Python ``**``.

    Mirrors the two power branches of
    ``_Evaluator._sequential_write_media_cap`` exactly; computed per
    unique access size because ``np.power`` is not bit-identical to
    CPython's ``**``.
    """
    if access_size < 1024:
        return (access_size / 1024.0) ** 0.08
    if access_size > 4096:
        return (4096.0 / access_size) ** 0.02
    return 1.0


def evaluate_grid_columns(
    context: EvalContext,
    points: Sequence[tuple[StreamSpec, ...] | list[StreamSpec]],
    directory: DirectoryState | None = None,
    *,
    recorder: "Recorder | None" = None,
) -> ResultColumns:
    """Evaluate a whole sweep axis into one column batch.

    Eligible points (:func:`classify_point` returning ``None`` — every
    point family the scalar evaluator can price) run through the batched
    structure-of-arrays kernel; the rest fall back to per-point
    :func:`repro.memsim.evaluation.evaluate` and are folded into the
    batch as rows. Either way row ``i`` is bit-identical to the
    per-point call for ``points[i]``, in ``points`` order. A point the
    scalar evaluator would reject raises the same error here, from the
    fallback path; each fallback also emits the
    ``sweep.vector.fallback_count`` counter family labeled with its
    :func:`classify_point` reason, so the residual scalar set is
    observable.

    When every point is eligible — the common case now that all five
    point families are vectorized — the kernel's own batch is returned
    directly: no per-point Python work happens beyond the row-building
    loop (and the interaction stage for multi-stream points).
    """
    state = directory if directory is not None else DirectoryState.cold()
    normalized_points = [
        streams if type(streams) is tuple else tuple(streams) for streams in points
    ]
    fallback: dict[int, str] = {}
    batch_points: list[tuple[StreamSpec, ...]] = []
    for i, streams in enumerate(normalized_points):
        reason = classify_point(context, streams)
        if reason is None:
            batch_points.append(streams)
        else:
            fallback[i] = reason
    emitting = recorder is not None and recorder.enabled
    columns, emit = evaluate_points_columns(context, batch_points, state)
    if not fallback:
        # All-eligible fast path: batch order is point order, so the
        # kernel's batch *is* the grid result — zero per-point assembly.
        if emitting:
            for pos in range(len(batch_points)):
                emit(recorder, pos)
        return columns
    # Fallback points are evaluated — and batched points emitted — in
    # ``points`` order: the per-point path accumulates recorder counters
    # point by point, and float addition is order-sensitive at the last
    # ulp, so matching its emission order is part of bit-identity.
    if emitting:
        from repro.obs import probes
    config = context.config
    out = ResultColumns()
    pos = 0
    for i, streams in enumerate(normalized_points):
        reason = fallback.get(i)
        if reason is None:
            if emitting:
                emit(recorder, pos)
            out.append_from(columns, pos)
            pos += 1
        else:
            if emitting:
                probes.emit_vector_fallback(recorder, reason)
            out.append_result(
                evaluation.evaluate(
                    config, streams, state, recorder=recorder, context=context
                )
            )
    return out


def evaluate_grid(
    context: EvalContext,
    points: Sequence[tuple[StreamSpec, ...] | list[StreamSpec]],
    directory: DirectoryState | None = None,
    *,
    recorder: "Recorder | None" = None,
) -> "list[BandwidthResult]":
    """:func:`evaluate_grid_columns` materialized to per-point results.

    Compatibility wrapper; batch-native consumers should take the
    columns directly and materialize views only where needed.
    """
    return evaluate_grid_columns(
        context, points, directory, recorder=recorder
    ).views()
