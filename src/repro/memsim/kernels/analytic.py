"""Batched analytic evaluation: one NumPy pass over a whole sweep axis.

The per-point evaluator (:func:`repro.memsim.evaluation.evaluate`) costs
tens of microseconds per call, almost all of it Python interpretation of
the same short arithmetic chain. A sweep evaluates hundreds of points
against one shared :class:`~repro.memsim.context.EvalContext`, so this
module lays the points out structure-of-arrays — one array per stream
attribute — and runs the chain once over the batch.

Results *stay* structure-of-arrays: the native product of every kernel
here is a :class:`~repro.memsim.kernels.columns.ResultColumns` batch,
and per-point :class:`~repro.memsim.evaluation.BandwidthResult` objects
exist only as lazy views built on demand. Materializing the three result
objects per point used to cost ~4.7 µs under a ~25-30 µs scalar
baseline — the dominant term once the arithmetic was batched — so the
columnar path is what the sweep service, process pool, disk cache, and
experiment consumers all move between themselves.

**Bit-identity contract.** Every elementwise float64 add, subtract,
multiply, divide, minimum and maximum is correctly rounded under
IEEE-754, so applying the *same operations in the same order* across an
array produces bit-identical floats to the scalar chain. Two things
would break that and are therefore kept scalar:

* ``**`` — ``np.power`` routes through a different libm path than
  CPython's ``float.__pow__`` and differs in the last ulp for some
  inputs. All power terms (write-combining pressure, the sub-kilobyte
  and super-4K write-cap factors) are computed per *unique* operand with
  Python ``**`` — for the combining term by calling the same
  :class:`~repro.memsim.buffers.WriteCombiningModel` method the scalar
  evaluator calls — and scattered into the arrays.
* branches — selected with boolean masks (``np.where``) between
  sub-expressions that each mirror one scalar branch exactly. The
  counter columns reuse the same device: ``app_bytes_read`` is
  ``np.where(is_read, volume, 0.0)``, a pure selection of floats the
  scalar path computes identically.

**Eligibility.** The fast path covers the shape that dominates the
paper's sweeps: a single near sequential stream, pinned, on devdax PMEM
or on DRAM. Such points take no note-producing branches and leave the
directory untouched. Everything else — multi-stream interaction, random
patterns, far placement, unpinned scheduling, fsdax — falls back to the
scalar evaluator per point, which is trivially bit-identical and keeps
this module free of rarely-exercised vector branches.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.memsim import evaluation
from repro.memsim.address import DaxMode
from repro.memsim.config import DirectoryState
from repro.memsim.constants import INTERLEAVE_SIZE, OPTANE_LINE
from repro.memsim.context import EvalContext
from repro.memsim.kernels.columns import ResultColumns
from repro.memsim.scheduler import PinningPolicy
from repro.memsim.spec import Layout, Op, Pattern, StreamSpec
from repro.memsim.topology import MediaKind
from repro.units import GB

if TYPE_CHECKING:
    from typing import Callable

    from repro.memsim.config import MachineConfig
    from repro.memsim.evaluation import BandwidthResult
    from repro.obs import Recorder

__all__ = [
    "evaluate_batch",
    "evaluate_batch_columns",
    "evaluate_batch_deferred",
    "evaluate_grid",
    "evaluate_grid_columns",
    "vector_eligible",
]

#: Issue contribution of a hyperthread sibling; mirrors
#: :attr:`repro.memsim.scheduler.ThreadPlacement.effective_issue_threads`
#: (the scalar↔vector property tests pin the two together).
_HT_YIELD = 0.25


def vector_eligible(ctx: EvalContext, streams: tuple[StreamSpec, ...]) -> bool:
    """Whether ``streams`` is evaluable on the batched fast path.

    Deliberately raises nothing: points that would make the scalar
    evaluator raise (unknown socket, no DIMMs of the requested media)
    are reported ineligible so the fallback surfaces the same error.
    """
    if len(streams) != 1:
        return False
    spec = streams[0]
    if spec.pattern is not Pattern.SEQUENTIAL:
        return False
    if spec.issuing_socket != spec.target_socket or spec.pinning is PinningPolicy.NONE:
        return False
    if spec.issuing_socket not in ctx.socket_ids:
        return False
    if spec.media is MediaKind.PMEM:
        if spec.dax_mode is not DaxMode.DEVDAX:
            return False
        if ctx.interleave_maps[(spec.target_socket, spec.media)] is None:
            return False
        return True
    return spec.media is MediaKind.DRAM


def evaluate_batch_columns(
    ctx: EvalContext,
    specs: Sequence[StreamSpec],
    directory: DirectoryState,
) -> "tuple[ResultColumns, Callable[[Recorder, int], None]]":
    """Evaluate eligible single-stream points into one column batch.

    Every ``(spec,)`` must satisfy :func:`vector_eligible`; callers that
    cannot guarantee that should use :func:`evaluate_grid_columns`
    instead. Row ``i`` of the returned batch is bit-identical to
    per-point :func:`repro.memsim.evaluation.evaluate` of ``specs[i]``.

    Observability emission is left to the caller: the second element is
    ``emit(recorder, i)``, which replays point ``i``'s evaluation probes
    straight from the columns (no view is materialized). Grid evaluators
    interleave these emissions with scalar fallback evaluations *in
    point order*: float addition is order-sensitive at the last ulp, so
    recorder counters must accumulate in exactly the per-point order.
    """
    if not specs:
        return ResultColumns(), lambda recorder, i: None
    columns, write_amp = _evaluate_columns(ctx, specs, directory)

    def emit(recorder: "Recorder", i: int) -> None:
        _emit_point(recorder, ctx.config, columns, i, write_amp[i], directory)

    return columns, emit


def evaluate_batch(
    ctx: EvalContext,
    specs: Sequence[StreamSpec],
    directory: DirectoryState,
    *,
    recorder: "Recorder | None" = None,
) -> "list[BandwidthResult]":
    """:func:`evaluate_batch_columns` materialized to per-point results.

    Compatibility wrapper for callers that want objects; batch-native
    consumers should take the columns directly.
    """
    if not specs:
        return []
    columns, emit = evaluate_batch_columns(ctx, specs, directory)
    if recorder is not None and recorder.enabled:
        for i in range(len(columns)):
            emit(recorder, i)
    return columns.views()


def evaluate_batch_deferred(
    ctx: EvalContext,
    specs: Sequence[StreamSpec],
    directory: DirectoryState,
) -> "tuple[list[BandwidthResult], Callable[[Recorder, int], None]]":
    """:func:`evaluate_batch` with emission left to the caller.

    Compatibility wrapper over :func:`evaluate_batch_columns` returning
    materialized views plus the same ``emit(recorder, i)`` callable.
    """
    if not specs:
        return [], lambda recorder, i: None
    columns, emit = evaluate_batch_columns(ctx, specs, directory)
    return columns.views(), emit


def _evaluate_columns(
    ctx: EvalContext,
    specs: Sequence[StreamSpec],
    directory: DirectoryState,
) -> "tuple[ResultColumns, list[float]]":
    """The batch pass itself: the column batch plus per-point write amp.

    Write amplification is emitted to recorders but is not part of a
    result, so it rides alongside the batch rather than inside it.
    """
    cal = ctx.config.calibration
    parts = ctx.components
    prefetcher = parts.prefetcher
    wc = parts.write_combining

    n = len(specs)
    # Rows are accumulated as one tuple per point and transposed with
    # ``zip(*rows)`` — one append per point plus a C-level transpose beats
    # both per-element ndarray stores and parallel per-column appends,
    # and this loop is the batch's Python-side cost floor.
    rows: list[tuple] = []
    push = rows.append
    # Scalar companions (``wc_eff``/``cap_pow``) are computed per unique
    # operand with the exact code the per-point evaluator runs (`**` is
    # not vectorizable bit-identically).
    eff_memo: dict[tuple[int, int], float] = {}
    pow_memo: dict[int, float] = {}
    core_count = ctx.physical_core_count
    pmem_maps = {
        socket: ctx.interleave_maps[(socket, MediaKind.PMEM)]
        for socket in ctx.socket_ids
    }

    for spec in specs:
        spec_threads = spec.threads
        spec_size = spec.access_size
        read = spec.op is Op.READ
        pmem = spec.media is MediaKind.PMEM
        if pmem:
            interleave = pmem_maps[spec.target_socket]
            way_count = interleave.ways
            granularity = interleave.granularity
            if read:
                eff = factor = 1.0
            else:
                key = (spec_threads, spec_size)
                eff = eff_memo.get(key)
                if eff is None:
                    eff = wc.efficiency(spec_threads, spec_size)
                    eff_memo[key] = eff
                factor = pow_memo.get(spec_size)
                if factor is None:
                    factor = _write_cap_size_factor(spec_size)
                    pow_memo[spec_size] = factor
        else:
            way_count = granularity = 1
            eff = factor = 1.0
        push((
            spec_threads,
            spec_size,
            float(spec.total_bytes),
            core_count[spec.issuing_socket],
            way_count,
            granularity,
            read,
            pmem,
            spec.layout is Layout.GROUPED,
            spec.pinning is PinningPolicy.NUMA_REGION,
            eff,
            factor,
        ))

    (
        threads_c, size_c, volume_c, physical_c, ways_c, gran_c,
        read_c, pmem_c, grouped_c, numa_c, wc_eff_c, cap_pow_c,
    ) = zip(*rows)
    threads = np.array(threads_c, dtype=np.int64)
    size = np.array(size_c, dtype=np.int64)
    volume = np.array(volume_c, dtype=np.float64)
    physical = np.array(physical_c, dtype=np.int64)
    ways = np.array(ways_c, dtype=np.int64)
    gran = np.array(gran_c, dtype=np.int64)
    is_read = np.array(read_c, dtype=bool)
    is_pmem = np.array(pmem_c, dtype=bool)
    grouped = np.array(grouped_c, dtype=bool)
    numa = np.array(numa_c, dtype=bool)
    wc_eff = np.array(wc_eff_c, dtype=np.float64)
    cap_pow = np.array(cap_pow_c, dtype=np.float64)

    threads_f = threads.astype(np.float64)
    ways_f = ways.astype(np.float64)

    with np.errstate(divide="ignore", invalid="ignore"):
        # --- per-thread issue rate (_per_thread_rate / _issue_bandwidth)
        overhead = np.where(
            is_pmem,
            np.where(is_read, cal.pmem.read_op_overhead, cal.pmem.write_op_overhead),
            np.where(is_read, cal.dram.read_op_overhead, cal.dram.write_op_overhead),
        )
        stream_rate = np.where(
            is_pmem,
            np.where(is_read, cal.pmem.read_stream_rate, cal.pmem.write_stream_rate),
            np.where(is_read, cal.dram.read_stream_rate, cal.dram.write_stream_rate),
        )
        per_op_seconds = overhead + size / (stream_rate * GB)
        per_thread = size / per_op_seconds / GB
        effective_issue = (
            np.minimum(threads, physical) + np.maximum(0, threads - physical) * _HT_YIELD
        )
        issue = np.where(is_read, effective_issue, threads_f) * per_thread

        # --- grouped-sequential prefetcher dip (grouped_sequential_factor).
        # The dip window is defined against INTERLEAVE_SIZE for every
        # media kind, independent of any per-socket map granularity.
        if prefetcher.enabled:
            gsf = np.where(
                (size >= 1024) & (size < INTERLEAVE_SIZE),
                prefetcher.cpu.prefetch_dip_factor,
                1.0,
            )
        else:
            gsf = np.ones(n, dtype=np.float64)

        # --- read media cap (_sequential_read_media_cap)
        per_dimm_read = cal.pmem.seq_read_max / ways
        window = threads * size
        grouped_parallelism = np.minimum(ways_f, 1.0 + window / gran)
        read_cap_grouped = (per_dimm_read * grouped_parallelism) * gsf
        read_cap_individual = per_dimm_read * np.minimum(ways, 2 * threads)
        read_cap_dram = np.where(grouped, cal.dram.seq_read_max * gsf, cal.dram.seq_read_max)
        read_cap = np.where(
            is_pmem,
            np.where(grouped, read_cap_grouped, read_cap_individual),
            read_cap_dram,
        )

        # --- write media cap (_sequential_write_media_cap)
        per_dimm_write = cal.pmem.seq_write_max / ways
        write_parallelism = np.where(
            grouped,
            np.minimum(ways_f, 2.0 + window / gran),
            np.minimum(ways, 2 * threads).astype(np.float64),
        )
        small_factor = np.where(
            grouped & (size < OPTANE_LINE),
            np.maximum(0.45, size / OPTANE_LINE),
            1.0,
        )
        write_cap_pmem = ((per_dimm_write * write_parallelism) * wc_eff) * small_factor
        write_cap_pmem = write_cap_pmem * cap_pow
        write_cap = np.where(is_pmem, write_cap_pmem, cal.dram.seq_write_max)
        write_amp = 1.0 / wc_eff
        write_amp = np.where(
            grouped & (size < OPTANE_LINE),
            write_amp * (OPTANE_LINE / size),
            write_amp,
        )
        write_amp = np.where(is_pmem & ~is_read, write_amp, 1.0)

        # --- compose (_solo_sequential)
        media_cap = np.where(is_read, read_cap, write_cap)
        solo_gbps = np.minimum(issue, media_cap)
        if prefetcher.enabled:
            shared = np.minimum(1.0, (threads - physical) / physical)
            thread_factor = np.where(
                threads <= physical,
                1.0,
                1.0 - prefetcher.cpu.ht_imbalance_penalty * (4.0 * shared * (1.0 - shared)),
            )
        else:
            thread_factor = np.where(
                threads < 8, prefetcher.cpu.no_prefetch_low_thread_factor, 1.0
            )
        thread_factor = np.where(is_read, thread_factor, 1.0)
        pinned = np.where(
            numa & (threads > physical), parts.scheduler.cpu.numa_pinning_overhead, 1.0
        ) * np.where(numa & ~is_read, parts.scheduler.cpu.numa_pinning_write_overhead, 1.0)
        gbps = (solo_gbps * pinned) * thread_factor

        # --- counters (_collect_counters)
        occupancy_service = np.maximum(media_cap, 1e-9)  # simlint: ignore[unit-literal] -- epsilon guard, not a unit
        rho = np.minimum(issue / occupancy_service, 1.0)
        queue = rho + rho * rho / (2.0 * (1.0 - rho))
        occupancy = np.where(rho >= 1.0, 1.0, np.minimum(1.0, queue / (1.0 + queue)))
        media_read = np.where(is_read, volume, np.where(
            is_pmem & (write_amp > 1.0), volume * (write_amp - 1.0), 0.0
        ))
        media_written = np.where(is_read, 0.0, volume * write_amp)
        # Counter columns are mask selections over the arrays above —
        # the same ``x if read else 0.0`` split the scalar collector
        # performs, applied to identical floats.
        zeros = np.zeros(n, dtype=np.float64)
        app_read = np.where(is_read, volume, zeros)
        app_written = np.where(is_read, zeros, volume)
        rpq = np.where(is_read, occupancy, zeros)
        wpq = np.where(is_read, zeros, occupancy)

    # Assemble the batch column-by-column: eligible points are
    # single-stream (offsets are just ``range``), take no note-producing
    # branches, touch no UPI link or page-fault path, and leave the
    # directory untouched.
    out = ResultColumns()
    out.offsets = list(range(n + 1))
    out.specs = list(specs)
    out.gbps = gbps.tolist()
    out.solo_gbps = solo_gbps.tolist()
    out.stream_notes = [()] * n
    out.app_bytes_read = app_read.tolist()
    out.app_bytes_written = app_written.tolist()
    out.media_bytes_read = media_read.tolist()
    out.media_bytes_written = media_written.tolist()
    out.upi_bytes = [0.0] * n
    out.upi_utilization = [0.0] * n
    out.page_faults = [0] * n
    out.page_fault_seconds = [0.0] * n
    out.rpq_occupancy = rpq.tolist()
    out.wpq_occupancy = wpq.tolist()
    out.counter_notes = [()] * n
    out.directory_after = [directory] * n
    out._views = [None] * n
    return out, write_amp.tolist()


def _emit_point(
    recorder: "Recorder",
    config: "MachineConfig",
    columns: ResultColumns,
    i: int,
    write_amp: float,
    directory: DirectoryState,
) -> None:
    """Replay the scalar evaluator's probes for one batched point.

    Eligible points are never far, so the directory is unchanged and the
    sequential read amplification is identically 1.0 (buffers.py §3.1).
    Counters are rebuilt from the columns rather than materializing the
    point's view — emission must not force object materialization.
    """
    from repro.obs import probes

    row = columns.offsets[i]
    probes.emit_evaluation(
        recorder,
        config,
        [(columns.specs[row], columns.gbps[row], 1.0, write_amp)],
        columns._counters_at(i),
        directory,
        directory,
    )


def _write_cap_size_factor(access_size: int) -> float:
    """The sub-kilobyte / super-4K write-cap factor, with Python ``**``.

    Mirrors the two power branches of
    ``_Evaluator._sequential_write_media_cap`` exactly; computed per
    unique access size because ``np.power`` is not bit-identical to
    CPython's ``**``.
    """
    if access_size < 1024:
        return (access_size / 1024.0) ** 0.08
    if access_size > 4096:
        return (4096.0 / access_size) ** 0.02
    return 1.0


def evaluate_grid_columns(
    context: EvalContext,
    points: Sequence[tuple[StreamSpec, ...] | list[StreamSpec]],
    directory: DirectoryState | None = None,
    *,
    recorder: "Recorder | None" = None,
) -> ResultColumns:
    """Evaluate a whole sweep axis into one column batch.

    Eligible points (:func:`vector_eligible`) run through the batched
    structure-of-arrays kernel; the rest fall back to per-point
    :func:`repro.memsim.evaluation.evaluate` and are folded into the
    batch as rows. Either way row ``i`` is bit-identical to the
    per-point call for ``points[i]``, in ``points`` order. A point the
    scalar evaluator would reject raises the same error here, from the
    fallback path.

    When every point is eligible — the shape of a dense sweep axis — the
    kernel's own batch is returned directly: no per-point Python work
    happens at all beyond the row-building loop.
    """
    state = directory if directory is not None else DirectoryState.cold()
    normalized_points = [
        streams if type(streams) is tuple else tuple(streams) for streams in points
    ]
    batch_indices: list[int] = []
    batch_specs: list[StreamSpec] = []
    socket_ids = context.socket_ids
    pmem_available = {
        socket: context.interleave_maps[(socket, MediaKind.PMEM)] is not None
        for socket in socket_ids
    }
    config = context.config
    for i, streams in enumerate(normalized_points):
        # Inlined :func:`vector_eligible` with the context lookups hoisted
        # out of the loop; the scalar<->vector property tests pin the two
        # to each other.
        eligible = False
        if len(streams) == 1:
            spec = streams[0]
            if (
                spec.pattern is Pattern.SEQUENTIAL
                and spec.issuing_socket == spec.target_socket
                and spec.pinning is not PinningPolicy.NONE
                and spec.issuing_socket in socket_ids
            ):
                if spec.media is MediaKind.PMEM:
                    eligible = (
                        spec.dax_mode is DaxMode.DEVDAX
                        and pmem_available[spec.target_socket]
                    )
                else:
                    eligible = spec.media is MediaKind.DRAM
        if eligible:
            batch_indices.append(i)
            batch_specs.append(streams[0])
    batch_columns, emit = evaluate_batch_columns(context, batch_specs, state)
    emitting = recorder is not None and recorder.enabled
    if len(batch_indices) == len(normalized_points):
        # All-eligible fast path: batch order is point order, so the
        # kernel's batch *is* the grid result — zero per-point assembly.
        if emitting:
            for pos in range(len(batch_indices)):
                emit(recorder, pos)
        return batch_columns
    # Fallback points are evaluated — and batched points emitted — in
    # ``points`` order: the per-point path accumulates recorder counters
    # point by point, and float addition is order-sensitive at the last
    # ulp, so matching its emission order is part of bit-identity.
    out = ResultColumns()
    pos = 0
    for i, streams in enumerate(normalized_points):
        if pos < len(batch_indices) and batch_indices[pos] == i:
            if emitting:
                emit(recorder, pos)
            out.append_from(batch_columns, pos)
            pos += 1
        else:
            out.append_result(
                evaluation.evaluate(
                    config, streams, state, recorder=recorder, context=context
                )
            )
    return out


def evaluate_grid(
    context: EvalContext,
    points: Sequence[tuple[StreamSpec, ...] | list[StreamSpec]],
    directory: DirectoryState | None = None,
    *,
    recorder: "Recorder | None" = None,
) -> "list[BandwidthResult]":
    """:func:`evaluate_grid_columns` materialized to per-point results.

    Compatibility wrapper; batch-native consumers should take the
    columns directly and materialize views only where needed.
    """
    return evaluate_grid_columns(
        context, points, directory, recorder=recorder
    ).views()
