"""Vectorized evaluation kernels: batched sweeps over the pure core.

Two kernels, two contracts:

* :func:`evaluate_grid` (:mod:`repro.memsim.kernels.analytic`) — a
  structure-of-arrays batched analytic evaluator. One
  :class:`~repro.memsim.context.EvalContext` is shared across a whole
  sweep axis and every float is produced by the *same IEEE-754 operation
  in the same order* as per-point
  :func:`repro.memsim.evaluation.evaluate`, so results are **bit
  identical** — the sweep service can mix cached per-point results with
  batched computes freely.
* :func:`run_epochs` (:mod:`repro.memsim.kernels.epoch`) — an
  epoch-stepped fast path for the discrete-event engine. It trades the
  per-op ``heapq`` loop for batched array steps and is validated against
  the scalar engine within the crosscheck tolerance band; the scalar
  engine in :mod:`repro.memsim.engine.simulator` remains the oracle.
"""

from __future__ import annotations

from repro.memsim.kernels.analytic import (
    evaluate_batch,
    evaluate_batch_deferred,
    evaluate_grid,
    vector_eligible,
)
from repro.memsim.kernels.epoch import EpochEngine, run_epochs

__all__ = [
    "EpochEngine",
    "evaluate_batch",
    "evaluate_batch_deferred",
    "evaluate_grid",
    "run_epochs",
    "vector_eligible",
]
