"""Vectorized evaluation kernels: batched sweeps over the pure core.

Two kernels, two contracts:

* :func:`evaluate_grid_columns` (:mod:`repro.memsim.kernels.analytic`)
  — a structure-of-arrays batched analytic evaluator producing a
  :class:`ResultColumns` batch natively. One
  :class:`~repro.memsim.context.EvalContext` is shared across a whole
  sweep axis and every float is produced by the *same IEEE-754 operation
  in the same order* as per-point
  :func:`repro.memsim.evaluation.evaluate`, so results are **bit
  identical** — the sweep service can mix cached per-point results with
  batched computes freely. :func:`evaluate_grid` / :func:`evaluate_batch`
  are the materializing wrappers (lazy views over the same columns).
* :func:`run_epochs` (:mod:`repro.memsim.kernels.epoch`) — an
  epoch-stepped fast path for the discrete-event engine. It trades the
  per-op ``heapq`` loop for batched array steps and is validated against
  the scalar engine within the crosscheck tolerance band; the scalar
  engine in :mod:`repro.memsim.engine.simulator` remains the oracle.

:class:`ResultColumns` itself is imported eagerly (it is pure stdlib);
the kernels are resolved lazily via :pep:`562` so that consumers which
only ship or store column blocks — the sweep cache, the process-pool
boundary — never pull NumPy onto their import path.
"""

from __future__ import annotations

from typing import Any

from repro.memsim.kernels.columns import COUNTER_COLUMNS, ResultColumns

__all__ = [
    "COUNTER_COLUMNS",
    "EpochEngine",
    "FALLBACK_REASONS",
    "ResultColumns",
    "classify_point",
    "evaluate_batch",
    "evaluate_batch_columns",
    "evaluate_batch_deferred",
    "evaluate_grid",
    "evaluate_grid_columns",
    "evaluate_points_columns",
    "run_epochs",
    "vector_eligible",
]

_ANALYTIC = frozenset({
    "FALLBACK_REASONS",
    "classify_point",
    "evaluate_batch",
    "evaluate_batch_columns",
    "evaluate_batch_deferred",
    "evaluate_grid",
    "evaluate_grid_columns",
    "evaluate_points_columns",
    "vector_eligible",
})
_EPOCH = frozenset({"EpochEngine", "run_epochs"})


def __getattr__(name: str) -> Any:
    if name in _ANALYTIC:
        from repro.memsim.kernels import analytic

        return getattr(analytic, name)
    if name in _EPOCH:
        from repro.memsim.kernels import epoch

        return getattr(epoch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(__all__)
