"""Integrated-memory-controller (iMC) queue model.

Each NUMA node's iMC holds read- and write-pending queues (RPQ/WPQ) in
front of its three memory channels. Two phenomena live here:

* **Write masking**: the WPQ acknowledges stores long before the media
  completes them, so applications can overrun the device; sustained
  overrun shows up as full WPQs and stalled store issue (§4.2).
* **Cross-socket pollution**: requests arriving over UPI interleave into
  the same queues as local ones with extra latency jitter, destroying the
  near-sequential insertion order local threads produce. On Optane this
  causes extra 256 B line fetches (read amplification) — the mechanism
  behind the low "1 Near + 1 Far on the same PMEM" bandwidth (§3.5).

The analytic bandwidth model consumes the pollution factors; the
discrete-event engine uses the queue depths directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError


@dataclass(frozen=True)
class ImcModel:
    """Queue-level behaviour of one integrated memory controller."""

    #: Entries in each read pending queue. Intel documents RPQs on this
    #: platform generation around this depth; the exact value only shapes
    #: the DES warm-up, not steady-state bandwidth.
    rpq_depth: int = 64

    #: Entries in each write pending queue.
    wpq_depth: int = 32

    #: Read-amplification factor applied to a local Optane stream when a
    #: remote socket's requests interleave into the same queues. Fitted to
    #: the Fig. 6a shared-target collapse together with the coherence
    #: write traffic modeled in :mod:`repro.memsim.bandwidth`.
    cross_socket_read_amplification: float = 2.0

    #: Fraction of per-socket far-read bandwidth retained when *both*
    #: sockets read their far PMEM simultaneously (queue pollution on both
    #: home iMCs, on top of the UPI capacity split).
    far_far_pollution_factor: float = 0.82

    def occupancy(self, offered_gbps: float, service_gbps: float) -> float:
        """Steady-state queue occupancy fraction for an offered load.

        A simple M/D/1-flavoured saturation curve: occupancy approaches 1
        as the offered load approaches the service rate. Used to populate
        the RPQ/WPQ occupancy counters that the paper reads out of VTune.
        """
        if service_gbps <= 0:
            raise WorkloadError("service rate must be positive")
        if offered_gbps < 0:
            raise WorkloadError("offered load cannot be negative")
        rho = min(offered_gbps / service_gbps, 1.0)
        if rho >= 1.0:
            return 1.0
        # Mean queue length of M/D/1, normalised into [0, 1).
        queue = rho + rho * rho / (2.0 * (1.0 - rho))
        return min(1.0, queue / (1.0 + queue))
