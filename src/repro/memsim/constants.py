"""Architectural constants of the modeled memory subsystem.

These are *structural* facts taken directly from the paper's Section 2
(and Intel documentation cited there), as opposed to the *fitted* device
parameters in :mod:`repro.memsim.calibration`. Structural constants are
not tunable: changing them would model a different machine, not a
differently calibrated one.
"""

from __future__ import annotations

from repro.units import GIB, KIB

#: CPU cache line size in bytes. All loads/stores reach memory in units of
#: this size; the paper's microbenchmarks use 64 B ``vmovntdqa(a)`` chunks.
CACHE_LINE: int = 64

#: Optane's internal access granularity ("XPLine") in bytes. The DIMM
#: controller reads and writes the 3D-XPoint media in 256 B units; smaller
#: external accesses cause read/write amplification (paper §2.1, §4.1).
OPTANE_LINE: int = 256

#: DIMM interleaving granularity in bytes. Data is striped across the six
#: DIMMs of a socket in 4 KB steps (paper Figure 2).
INTERLEAVE_SIZE: int = 4 * KIB

#: Number of memory channels per integrated memory controller.
CHANNELS_PER_IMC: int = 3

#: Number of integrated memory controllers per socket.
IMCS_PER_SOCKET: int = 2

#: Number of physical cores per socket on the paper's Xeon Gold 5220S.
PHYSICAL_CORES_PER_SOCKET: int = 18

#: Hyperthreads (logical cores) per physical core.
THREADS_PER_CORE: int = 2

#: Number of NUMA nodes per socket (sub-NUMA clustering; paper §2.3: each
#: socket is one NUMA *region* made of two NUMA *nodes* of 9 cores + 1 iMC).
NUMA_NODES_PER_SOCKET: int = 2

#: Number of sockets in the paper's evaluation server.
SOCKETS: int = 2

#: Capacity of a single Optane DIMM in the paper's system.
PMEM_DIMM_CAPACITY: int = 128 * GIB

#: Capacity of a single DDR4 DIMM in the paper's system.
DRAM_DIMM_CAPACITY: int = 16 * GIB

#: Default huge-page size used by devdax/fsdax mappings (ndctl default).
PMEM_PAGE_SIZE: int = 2 * 1024 * KIB

#: Default per-config data volume of the paper's read/write sweeps (70 GB).
DEFAULT_SWEEP_BYTES: int = 70 * GIB
