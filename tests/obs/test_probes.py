"""Counter emission from the evaluation core, the DES engine, and SSB.

The load-bearing assertion here is the paper's byte-accounting identity:
for every DIMM, the line-granular bytes *issued* to it equal the bytes
its media *served* plus the bytes *dropped* (absorbed) by the on-DIMM
buffers — nothing is created or lost between the iMC and the media.
"""

import re

import pytest

from repro.memsim import evaluation
from repro.memsim.config import DirectoryState, MachineConfig, paper_config
from repro.memsim.engine.simulator import EngineConfig, simulate
from repro.memsim.spec import Layout, Op, Pattern, StreamSpec
from repro.obs import CountersRecorder, using_recorder
from repro.obs.catalog import describe, validate_name
from repro.sweep import EvaluationService

FIG3_POINT = StreamSpec(
    op=Op.READ, threads=36, access_size=4096,
    pattern=Pattern.SEQUENTIAL, layout=Layout.GROUPED,
)
FIG8_POINT = StreamSpec(
    op=Op.WRITE, threads=18, access_size=16384,
    pattern=Pattern.SEQUENTIAL, layout=Layout.INDIVIDUAL,
)


def record_evaluation(spec, config=None, directory=None) -> CountersRecorder:
    rec = CountersRecorder()
    evaluation.evaluate(
        config if config is not None else paper_config(),
        [spec],
        directory if directory is not None else DirectoryState.cold(),
        recorder=rec,
    )
    return rec


def dimm_prefixes(rec: CountersRecorder, pattern: str) -> list[str]:
    return sorted(
        {
            match.group(1)
            for match in (re.match(pattern, name) for name in rec.counters)
            if match
        }
    )


class TestByteAccountingIdentity:
    @pytest.mark.parametrize("spec", [FIG3_POINT, FIG8_POINT], ids=["fig3", "fig8"])
    def test_issued_equals_served_plus_dropped(self, spec):
        rec = record_evaluation(spec)
        prefixes = dimm_prefixes(rec, r"(memsim\.dimm\.s\d+\.d\d+)\.")
        assert prefixes, "expected per-DIMM counters"
        for prefix in prefixes:
            issued = rec.counter(f"{prefix}.issued_bytes")
            served = rec.counter(f"{prefix}.served_bytes")
            dropped = rec.counter(f"{prefix}.dropped_bytes")
            assert issued == served + dropped
            assert issued > 0.0
            assert dropped >= 0.0

    def test_read_buffer_bytes_mirror_the_split(self):
        rec = record_evaluation(FIG3_POINT)
        prefixes = dimm_prefixes(rec, r"(memsim\.dimm\.s\d+\.d\d+)\.")
        dropped = sum(rec.counter(f"{p}.dropped_bytes") for p in prefixes)
        served = sum(rec.counter(f"{p}.served_bytes") for p in prefixes)
        assert rec.counter("memsim.read_buffer.hit_bytes") == pytest.approx(dropped)
        assert rec.counter("memsim.read_buffer.miss_bytes") == pytest.approx(served)

    def test_write_point_counts_write_combining(self):
        rec = record_evaluation(FIG8_POINT)
        assert rec.counter("memsim.wc.hit_count") > 0.0
        assert rec.counter("memsim.wc.miss_count") >= 0.0
        assert rec.counter("memsim.app.write_bytes") > 0.0


class TestEvaluationEmission:
    def test_every_emitted_name_is_catalogued(self):
        rec = record_evaluation(
            StreamSpec(
                op=Op.READ, threads=8, access_size=256,
                issuing_socket=0, target_socket=1,
            )
        )
        names = list(rec.counters) + list(rec.histograms)
        assert names
        for name in names:
            assert validate_name(name) is None, name
            assert describe(name) is not None, name

    def test_request_count_matches_volume_over_size(self):
        rec = record_evaluation(FIG3_POINT)
        expected = FIG3_POINT.total_bytes / FIG3_POINT.access_size
        assert rec.counter("memsim.eval.requests_count") == expected

    def test_prefetch_counters_gate_on_config(self):
        on = record_evaluation(FIG3_POINT)
        off = record_evaluation(FIG3_POINT, config=MachineConfig(prefetcher_enabled=False))
        assert on.counter("memsim.prefetch.issued_count") > 0.0
        assert off.counter("memsim.prefetch.issued_count") == 0.0

    def test_recorder_never_changes_the_result(self):
        plain = evaluation.evaluate(paper_config(), [FIG3_POINT], DirectoryState.cold())
        observed = evaluation.evaluate(
            paper_config(), [FIG3_POINT], DirectoryState.cold(),
            recorder=CountersRecorder(),
        )
        assert plain.total_gbps == observed.total_gbps
        assert plain.counters == observed.counters

    def test_directory_transitions_counted(self):
        far = StreamSpec(
            op=Op.READ, threads=8, access_size=4096,
            issuing_socket=0, target_socket=1,
        )
        rec = record_evaluation(far)
        assert rec.counter("memsim.directory.transitions_count") == 1.0


class TestCacheHitSemantics:
    def test_hit_replays_event_not_evaluation_counters(self):
        service = EvaluationService()
        rec = CountersRecorder()
        with using_recorder(rec):
            service.evaluate(paper_config(), [FIG3_POINT], DirectoryState.cold())
        hit_rec = CountersRecorder()
        with using_recorder(hit_rec):
            service.evaluate(paper_config(), [FIG3_POINT], DirectoryState.cold())
        assert rec.counter("sweep.cache.misses_count") == 1.0
        assert rec.counter("memsim.eval.calls_count") == 1.0
        assert hit_rec.counter("sweep.cache.hits_count") == 1.0
        assert hit_rec.event_counts.get("sweep.cache_hit") == 1
        # The hit replays a cache_hit event, not the original evaluation.
        assert hit_rec.counter("memsim.eval.calls_count") == 0.0


class TestEngineEmission:
    def test_engine_identity_and_totals(self):
        config = EngineConfig(op=Op.READ, threads=4, access_size=4096,
                              total_bytes=1 << 24)
        rec = CountersRecorder()
        result = simulate(config, recorder=rec)
        prefixes = dimm_prefixes(rec, r"(engine\.dimm\.d\d+)\.")
        assert prefixes
        for prefix in prefixes:
            issued = rec.counter(f"{prefix}.issued_bytes")
            served = rec.counter(f"{prefix}.served_bytes")
            dropped = rec.counter(f"{prefix}.dropped_bytes")
            assert issued == served + dropped
        assert rec.counter("engine.app.moved_bytes") == result.bytes_moved
        assert rec.counter("engine.media.moved_bytes") == result.media_bytes
        assert rec.counter("engine.requests_count") > 0.0
        for name in rec.counters:
            assert validate_name(name) is None, name
            assert describe(name) is not None, name

    def test_engine_unobserved_matches_observed(self):
        config = EngineConfig(op=Op.WRITE, threads=2, access_size=4096,
                              total_bytes=1 << 22)
        plain = simulate(config)
        observed = simulate(config, recorder=CountersRecorder())
        assert plain.seconds == observed.seconds
        assert plain.per_dimm_bytes == observed.per_dimm_bytes


class TestSsbEmission:
    @pytest.fixture(scope="class")
    def executed(self):
        from repro.ssb import dbgen
        from repro.ssb.engine.executor import SsbExecutor
        from repro.ssb.queries import ALL_QUERIES
        from repro.ssb.storage import HANDCRAFTED_PMEM

        db = dbgen.generate(scale_factor=0.01, seed=7)
        executor = SsbExecutor(db, HANDCRAFTED_PMEM)
        rec = CountersRecorder()
        result = executor.execute(ALL_QUERIES[0], recorder=rec)
        return rec, result

    def test_executor_totals_match_traffic(self, executed):
        rec, result = executed
        assert rec.counter("ssb.exec.queries_count") == 1.0
        assert rec.counter("ssb.exec.seq_read_bytes") == result.traffic.seq_read_bytes
        assert rec.counter("ssb.exec.random_requests_count") == result.traffic.random_reads
        assert rec.counter("ssb.exec.write_bytes") == result.traffic.write_bytes
        assert rec.event_counts["ssb.exec.operator"] == len(result.traffic.operators)

    def test_cost_model_emits_per_operator_events(self, executed):
        from repro.ssb.costmodel import SsbCostModel
        from repro.ssb.storage import HANDCRAFTED_PMEM

        _, result = executed
        rec = CountersRecorder()
        breakdown = SsbCostModel().price(
            result.traffic, HANDCRAFTED_PMEM, recorder=rec
        )
        assert rec.event_counts["ssb.operator"] == len(breakdown.phases)
        assert rec.span_counts["ssb.price"] == 1
        summary = rec.histograms["ssb.query.predicted_seconds"]
        assert summary.count == 1
        assert summary.total == breakdown.seconds
        for name in list(rec.counters) + list(rec.histograms):
            assert validate_name(name) is None, name
            assert describe(name) is not None, name
