"""Golden counter-snapshot regression tests.

Each case runs a pinned workload under a :class:`CountersRecorder` and
compares the snapshot — exact equality, floats included — against a
checked-in JSON file under ``tests/obs/goldens/``. Any behavioural
change in the model shows up as a *named* counter diff, which is the
point: "fig3 got slower" is vague, "memsim.prefetch.issued_count went
to 0" names the mechanism.

Updating goldens
----------------
Run ``pytest tests/obs --update-goldens`` to rewrite the files. That is
legitimate **only** when a model change is intentional (a calibration
fix, a new mechanism) — the rewritten files must be reviewed in the
same commit as the change that motivated them. It is never the fix for
an unexplained diff: that diff *is* the regression report.
"""

from pathlib import Path

import pytest

from repro.memsim import evaluation
from repro.memsim.config import DirectoryState, MachineConfig, paper_config
from repro.memsim.spec import Layout, Op, Pattern, StreamSpec
from repro.obs import CountersRecorder
from repro.obs.golden import canonical_json, diff_snapshots, load_golden, write_golden

GOLDEN_DIR = Path(__file__).parent / "goldens"

FIG3_SPEC = StreamSpec(
    op=Op.READ, threads=36, access_size=4096,
    pattern=Pattern.SEQUENTIAL, layout=Layout.GROUPED,
)
FIG8_SPEC = StreamSpec(
    op=Op.WRITE, threads=18, access_size=16384,
    pattern=Pattern.SEQUENTIAL, layout=Layout.INDIVIDUAL,
)


def _evaluation_snapshot(spec: StreamSpec, config: MachineConfig | None = None):
    rec = CountersRecorder()
    evaluation.evaluate(
        config if config is not None else paper_config(),
        [spec],
        DirectoryState.cold(),
        recorder=rec,
    )
    return rec.snapshot()


def snapshot_fig03():
    """Fig. 3's peak-read point: 36 threads, 4 KiB, grouped sequential."""
    return _evaluation_snapshot(FIG3_SPEC)


def snapshot_fig08():
    """Fig. 8's boomerang region: 18 threads writing 16 KiB individually."""
    return _evaluation_snapshot(FIG8_SPEC)


def snapshot_table1():
    """Table 1 pricing traffic: Q2.1 on the handcrafted PMEM profile."""
    from repro.ssb.costmodel import SsbCostModel
    from repro.ssb.engine.traffic import OperatorTraffic, QueryTraffic
    from repro.ssb.storage import HANDCRAFTED_PMEM
    from repro.units import GIB

    # Synthetic but representative Q2.1 traffic; hand-pinned so the
    # golden does not depend on dbgen (only on the cost model itself).
    traffic = QueryTraffic(query="Q2.1")
    traffic.add(OperatorTraffic(
        name="scan-lineorder", seq_read_bytes=96.0 * GIB, cpu_tuples=600e6,
    ))
    traffic.add(OperatorTraffic(
        name="probe-part", random_reads=120e6, random_read_size=256,
        cpu_tuples=120e6,
    ))
    traffic.add(OperatorTraffic(
        name="aggregate", seq_write_bytes=2.0 * GIB, cpu_tuples=60e6,
    ))
    rec = CountersRecorder()
    SsbCostModel().price(traffic, HANDCRAFTED_PMEM, recorder=rec)
    return rec.snapshot()


CASES = {
    "fig03": snapshot_fig03,
    "fig08": snapshot_fig08,
    "table1": snapshot_table1,
}


@pytest.mark.parametrize("case", sorted(CASES), ids=sorted(CASES))
def test_snapshot_matches_golden(case, update_goldens):
    snapshot = CASES[case]()
    path = GOLDEN_DIR / f"{case}.json"
    if update_goldens:
        write_golden(path, snapshot)
        return
    assert path.exists(), (
        f"missing golden {path}; generate it with "
        "pytest tests/obs --update-goldens"
    )
    expected = load_golden(path)
    diff = diff_snapshots(expected, snapshot)
    assert not diff, "counter diff vs golden:\n" + "\n".join(diff)
    # Belt and braces: canonical serialisation is byte-identical too.
    assert canonical_json(snapshot) == path.read_text(encoding="utf-8")


def test_perturbed_model_reports_a_named_counter_diff():
    """Flipping a memsim mechanism must fail the golden loudly, naming
    the mechanism's counter — not just 'something changed'."""
    golden = load_golden(GOLDEN_DIR / "fig03.json")
    perturbed = _evaluation_snapshot(
        FIG3_SPEC, config=MachineConfig(prefetcher_enabled=False)
    )
    diff = diff_snapshots(golden, perturbed)
    assert diff, "disabling the prefetcher must perturb the fig03 snapshot"
    assert any("memsim.prefetch.issued_count" in line for line in diff)


def test_goldens_are_canonically_formatted():
    """Checked-in goldens must be exactly what write_golden emits, so
    --update-goldens never produces formatting-only churn."""
    paths = sorted(GOLDEN_DIR.glob("*.json"))
    assert len(paths) == len(CASES)
    for path in paths:
        assert path.read_text(encoding="utf-8") == canonical_json(load_golden(path))
