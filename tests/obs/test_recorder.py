"""Unit tests for the recorder implementations and obs helpers."""

import json

import pytest

from repro.obs import (
    NULL_RECORDER,
    CountersRecorder,
    HistogramSummary,
    NullRecorder,
    TraceRecorder,
    default_recorder,
    set_default_recorder,
    using_recorder,
)
from repro.obs.catalog import CATALOG, UNIT_SUFFIXES, describe, validate_name
from repro.obs.golden import canonical_json, diff_snapshots
from repro.obs.report import render_recorder, render_snapshot


class TestNullRecorder:
    def test_disabled_and_inert(self):
        rec = NullRecorder()
        assert rec.enabled is False
        rec.incr("any.name_count")
        rec.observe("any.name_seconds", 1.0)
        rec.event("any.thing", a=1)
        with rec.span("any.unit", b=2):
            pass

    def test_span_is_reentrant(self):
        with NULL_RECORDER.span("outer.work_count"):
            with NULL_RECORDER.span("inner.work_count"):
                pass


class TestCountersRecorder:
    def test_incr_accumulates(self):
        rec = CountersRecorder()
        rec.incr("a.b_count")
        rec.incr("a.b_count", 2.5)
        assert rec.counter("a.b_count") == 3.5
        assert rec.counter("never.seen_count") == 0.0

    def test_observe_builds_histogram(self):
        rec = CountersRecorder()
        for value in (3.0, 1.0, 2.0):
            rec.observe("a.b_seconds", value)
        summary = rec.histograms["a.b_seconds"]
        assert summary.count == 3
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0
        assert summary.mean == 2.0

    def test_events_and_spans_are_tallied(self):
        rec = CountersRecorder()
        rec.event("x.y", detail="ignored")
        rec.event("x.y")
        with rec.span("x.z", grid="fig3"):
            pass
        assert rec.event_counts == {"x.y": 2}
        assert rec.span_counts == {"x.z": 1}

    def test_snapshot_is_sorted_and_json_roundtrips(self):
        rec = CountersRecorder()
        rec.incr("b.x_count")
        rec.incr("a.x_count")
        rec.observe("c.y_ratio", 0.5)
        snap = rec.snapshot()
        assert list(snap["counters"]) == ["a.x_count", "b.x_count"]
        assert json.loads(json.dumps(snap)) == snap


class TestHistogramSummary:
    def test_empty_mean_is_zero(self):
        assert HistogramSummary().mean == 0.0

    def test_to_json_fields(self):
        summary = HistogramSummary()
        summary.add(2.0)
        summary.add(4.0)
        assert summary.to_json() == {"count": 2, "total": 6.0, "min": 2.0, "max": 4.0}


class TestTraceRecorder:
    def test_records_are_sequenced(self):
        rec = TraceRecorder()
        rec.incr("a.b_count")
        rec.event("a.c", k=1)
        assert [r["seq"] for r in rec.records] == [0, 1]
        assert len(rec) == 2

    def test_span_nesting_tracks_depth(self):
        rec = TraceRecorder()
        with rec.span("outer.work_count"):
            with rec.span("inner.work_count"):
                rec.event("deep.thing")
        kinds = [(r["type"], r.get("depth")) for r in rec.records]
        assert kinds == [
            ("span_begin", 0),
            ("span_begin", 1),
            ("event", 2),
            ("span_end", 1),
            ("span_end", 0),
        ]

    def test_observations_dropped_by_default(self):
        rec = TraceRecorder()
        rec.observe("wall.time_seconds", 0.25)
        assert len(rec) == 0
        keen = TraceRecorder(record_observations=True)
        keen.observe("wall.time_seconds", 0.25)
        assert keen.records[0]["type"] == "observe"

    def test_clock_injection_adds_timestamps(self):
        ticks = iter((1.5, 2.5))
        rec = TraceRecorder(clock=lambda: next(ticks))
        rec.incr("a.b_count")
        rec.incr("a.b_count")
        assert [r["t"] for r in rec.records] == [1.5, 2.5]

    def test_export_jsonl_roundtrips(self, tmp_path):
        rec = TraceRecorder()
        rec.incr("a.b_count", 2.0)
        with rec.span("a.c_count", label="x"):
            pass
        path = tmp_path / "trace.jsonl"
        text = rec.export_jsonl(path)
        assert path.read_text(encoding="utf-8") == text
        parsed = [json.loads(line) for line in text.splitlines()]
        assert parsed == rec.records

    def test_export_empty_trace(self):
        assert TraceRecorder().export_jsonl() == ""


class TestDefaultRecorder:
    def test_default_is_the_shared_null(self):
        assert default_recorder() is NULL_RECORDER

    def test_set_returns_previous(self):
        rec = CountersRecorder()
        try:
            assert set_default_recorder(rec) is None
            assert default_recorder() is rec
        finally:
            set_default_recorder(None)
        assert default_recorder() is NULL_RECORDER

    def test_using_recorder_restores_on_exception(self):
        rec = CountersRecorder()
        with pytest.raises(KeyError):
            with using_recorder(rec):
                assert default_recorder() is rec
                raise KeyError("boom")
        assert default_recorder() is NULL_RECORDER


class TestCatalog:
    def test_valid_names(self):
        assert validate_name("memsim.app.read_bytes") is None
        assert validate_name("sweep.points_count") is None
        assert validate_name("a.b_gbps") is None

    @pytest.mark.parametrize(
        "name",
        [
            "single_count",  # no dot
            "memsim.app.read",  # no unit suffix
            "memsim.App.read_bytes",  # upper case segment
            "memsim..read_bytes",  # empty segment
            "memsim.1app.read_bytes",  # leading digit
            "memsim.app.read_parsecs",  # unknown unit
        ],
    )
    def test_invalid_names_report_a_reason(self, name):
        assert validate_name(name) is not None

    def test_every_catalog_pattern_self_validates(self):
        for spec in CATALOG:
            concrete = ".".join(
                "s0" if segment == "*" else segment
                for segment in spec.pattern.split(".")
            )
            assert validate_name(concrete) is None, spec.pattern
            assert spec.unit in UNIT_SUFFIXES

    def test_describe_resolves_wildcards(self):
        spec = describe("memsim.dimm.s1.d4.issued_bytes")
        assert spec is not None
        assert spec.unit == "bytes"
        assert describe("memsim.dimm.nonsense") is None


class TestGoldenHelpers:
    def test_canonical_json_is_stable(self):
        snap = {"counters": {"b.x_count": 1.0, "a.x_count": 2.0}}
        assert canonical_json(snap) == canonical_json(dict(reversed(snap.items())))
        assert canonical_json(snap).endswith("\n")

    def test_diff_reports_value_missing_and_unexpected(self):
        expected = {"counters": {"a.x_count": 1.0, "b.x_count": 2.0}}
        actual = {"counters": {"a.x_count": 5.0, "c.x_count": 3.0}}
        lines = diff_snapshots(expected, actual)
        assert any("a.x_count" in line and "expected" in line for line in lines)
        assert any("b.x_count" in line and "missing" in line for line in lines)
        assert any("c.x_count" in line and "unexpected" in line for line in lines)

    def test_identical_snapshots_have_no_diff(self):
        snap = {"counters": {"a.x_count": 1.0}, "events": {"e": 2}}
        assert diff_snapshots(snap, snap) == []


class TestReport:
    def test_empty_recorder_renders_placeholder(self):
        assert "no observations" in render_recorder(CountersRecorder())

    def test_rendering_scales_units_and_annotates(self):
        rec = CountersRecorder()
        rec.incr("memsim.app.read_bytes", 2.5e9)
        rec.incr("sweep.points_count", 3)
        rec.observe("memsim.imc.rpq_occupancy_ratio", 0.5)
        text = render_snapshot(rec.snapshot())
        assert "GB" in text
        assert "50.0%" in text
        assert "# application read volume" in text
