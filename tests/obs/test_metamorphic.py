"""Metamorphic invariants over observability counters.

Rather than pinning absolute values, these tests assert *relations*
between counter readings of related evaluations — invariants that any
correct bandwidth model must satisfy regardless of calibration:

* adding threads never decreases the requests a workload issues;
* a warm coherence directory never produces *more* UPI coherence
  traffic than a cold one;
* doubling the access size at equal volume exactly halves the request
  count;
* random access never beats sequential access at the same shape.

Each invariant is checked across a seeded sample of the paper's sweep
grid (thread counts x access sizes), so a model regression anywhere in
the grid trips at least one pair.
"""

import random

import pytest

from repro.memsim import evaluation
from repro.memsim.config import DirectoryState, paper_config
from repro.memsim.spec import Op, Pattern, StreamSpec
from repro.obs import CountersRecorder
from repro.workloads import PAPER_ACCESS_SIZES, PAPER_THREAD_COUNTS

SEED = 20210607  # fixed: the sample must be identical on every run


def sample_grid(count: int, *, sizes=PAPER_ACCESS_SIZES) -> list[tuple[int, int]]:
    """Deterministic sample of (threads, access_size) sweep-grid cells."""
    cells = [(t, s) for t in PAPER_THREAD_COUNTS for s in sizes]
    return random.Random(SEED).sample(cells, count)


def record(spec: StreamSpec, directory: DirectoryState | None = None) -> CountersRecorder:
    rec = CountersRecorder()
    evaluation.evaluate(
        paper_config(),
        [spec],
        directory if directory is not None else DirectoryState.cold(),
        recorder=rec,
    )
    return rec


@pytest.mark.parametrize("op", [Op.READ, Op.WRITE], ids=["read", "write"])
def test_more_threads_never_decreases_issued_requests(op):
    for threads, size in sample_grid(6):
        more = min(t for t in PAPER_THREAD_COUNTS if t > threads) \
            if threads < max(PAPER_THREAD_COUNTS) else threads
        base = record(StreamSpec(op=op, threads=threads, access_size=size))
        scaled = record(StreamSpec(op=op, threads=more, access_size=size))
        assert (
            scaled.counter("memsim.eval.requests_count")
            >= base.counter("memsim.eval.requests_count")
        ), (threads, more, size)


def test_warm_directory_never_increases_upi_coherence():
    config = paper_config()
    for threads, size in sample_grid(6):
        far = StreamSpec(
            op=Op.READ, threads=threads, access_size=size,
            issuing_socket=0, target_socket=1,
        )
        cold = record(far, DirectoryState.cold())
        warm = record(far, DirectoryState.warm(config.topology))
        cold_bytes = cold.counter("memsim.upi.coherence_bytes")
        warm_bytes = warm.counter("memsim.upi.coherence_bytes")
        assert warm_bytes <= cold_bytes, (threads, size)
        assert cold_bytes > 0.0


@pytest.mark.parametrize("op", [Op.READ, Op.WRITE], ids=["read", "write"])
def test_doubling_access_size_halves_request_count(op):
    small_sizes = tuple(s for s in PAPER_ACCESS_SIZES if 2 * s in PAPER_ACCESS_SIZES)
    for threads, size in sample_grid(6, sizes=small_sizes):
        base = record(StreamSpec(op=op, threads=threads, access_size=size))
        doubled = record(StreamSpec(op=op, threads=threads, access_size=2 * size))
        assert (
            base.counter("memsim.eval.requests_count")
            == 2.0 * doubled.counter("memsim.eval.requests_count")
        ), (threads, size)


@pytest.mark.parametrize("op", [Op.READ, Op.WRITE], ids=["read", "write"])
def test_random_never_beats_sequential(op):
    for threads, size in sample_grid(6):
        sequential = record(
            StreamSpec(op=op, threads=threads, access_size=size,
                       pattern=Pattern.SEQUENTIAL)
        )
        randomized = record(
            StreamSpec(op=op, threads=threads, access_size=size,
                       pattern=Pattern.RANDOM)
        )
        seq_gbps = sequential.histograms["memsim.stream.achieved_gbps"].maximum
        rand_gbps = randomized.histograms["memsim.stream.achieved_gbps"].maximum
        assert rand_gbps <= seq_gbps, (threads, size)
