"""Tests for the experiment plumbing helpers."""

import pytest

from repro.experiments.common import curves_by, evaluate_grid, model_or_default
from repro.memsim import BandwidthModel, Op
from repro.workloads import sequential_sweep


class TestModelOrDefault:
    def test_passes_through(self):
        model = BandwidthModel()
        assert model_or_default(model) is model

    def test_builds_default(self):
        assert isinstance(model_or_default(None), BandwidthModel)


class TestEvaluateGrid:
    def test_every_label_evaluated(self):
        model = BandwidthModel()
        grid = sequential_sweep(
            Op.READ, access_sizes=(4096,), thread_counts=(1, 18)
        )
        values = evaluate_grid(model, grid)
        assert set(values) == set(grid.labels())
        assert all(v > 0 for v in values.values())

    def test_directory_prewarmed(self):
        # A far point inside a grid must see warm-directory behaviour.
        from repro.workloads import numa_locality_sweep

        model = BandwidthModel()
        grid = numa_locality_sweep(Op.READ, thread_counts=(18,))
        values = evaluate_grid(model, grid)
        assert values["far/18T"] == pytest.approx(33.0, rel=0.05)


class TestCurvesBy:
    def test_regroups_by_parameter(self):
        model = BandwidthModel()
        grid = sequential_sweep(
            Op.READ, access_sizes=(64, 4096), thread_counts=(1, 18)
        )
        values = evaluate_grid(model, grid)
        curves = curves_by(values, grid, "threads", "access_size")
        assert set(curves) == {"1", "18"}
        assert set(curves["18"]) == {"64", "4096"}
        assert curves["18"]["4096"] == values["18T/4096B"]
