"""Tests for experiment-result export."""

import csv
import json

import pytest

from repro.errors import ExperimentError
from repro.experiments.export import (
    comparisons_to_csv,
    series_to_csv,
    to_dict,
    to_json,
    write_bundle,
)
from repro.experiments.result import ExperimentResult


@pytest.fixture
def result():
    r = ExperimentResult(exp_id="figX", title="demo")
    r.add_series("a", {"1": 1.5, "2": 2.5})
    r.add_series("b", {"1": 3.0})
    r.compare("metric one", 10.0, 11.0)
    r.notes.append("a note")
    return r


class TestJson:
    def test_round_trips_through_json(self, result):
        data = json.loads(to_json(result))
        assert data["exp_id"] == "figX"
        assert data["series"]["a"]["2"] == 2.5
        assert data["comparisons"][0]["ratio"] == pytest.approx(1.1)
        assert data["notes"] == ["a note"]

    def test_dict_is_plain_data(self, result):
        data = to_dict(result)
        json.dumps(data)  # must not raise


class TestCsv:
    def test_series_long_form(self, result):
        rows = list(csv.reader(series_to_csv(result).splitlines()))
        assert rows[0] == ["series", "x", "value"]
        assert ["a", "2", "2.5"] in rows
        assert ["b", "1", "3.0"] in rows

    def test_comparisons(self, result):
        rows = list(csv.reader(comparisons_to_csv(result).splitlines()))
        assert rows[0][0] == "metric"
        assert rows[1][0] == "metric one"

    def test_empty_series_rejected(self):
        with pytest.raises(ExperimentError):
            series_to_csv(ExperimentResult(exp_id="x", title="t"))


class TestBundle:
    def test_writes_three_files(self, result, tmp_path):
        paths = write_bundle(result, tmp_path / "out")
        assert len(paths) == 3
        assert all(p.exists() for p in paths)
        assert (tmp_path / "out" / "figX.json").exists()

    def test_real_experiment_exports(self, tmp_path):
        from repro.experiments.registry import run_experiment

        figure = run_experiment("fig4")
        paths = write_bundle(figure, tmp_path)
        data = json.loads(paths[0].read_text())
        assert data["exp_id"] == "fig4"
        assert data["comparisons"]
