"""Every reproduced figure/table must land within a factor-2 band of
every value the paper states numerically — and most much closer. These
are the headline reproduction assertions."""

import pytest

from repro.experiments.registry import all_experiment_ids, run_experiment
from repro.memsim import BandwidthModel
from repro.ssb.runner import SsbRunner

_MODEL = BandwidthModel()
_RUNNER = SsbRunner(measured_sf=0.02, seed=5)
_MICRO_IDS = [
    e for e in all_experiment_ids() if e not in ("fig14", "table1")
]


@pytest.fixture(scope="module")
def results():
    out = {}
    for exp_id in _MICRO_IDS:
        out[exp_id] = run_experiment(exp_id, model=_MODEL)
    out["fig14"] = run_experiment("fig14", runner=_RUNNER)
    out["table1"] = run_experiment("table1", runner=_RUNNER)
    return out


class TestAllComparisonsWithinBand:
    @pytest.mark.parametrize("exp_id", _MICRO_IDS + ["fig14", "table1"])
    def test_within_2x(self, results, exp_id):
        result = results[exp_id]
        assert result.comparisons, f"{exp_id} asserts nothing"
        for c in result.comparisons:
            assert 0.5 <= c.ratio <= 2.0, (
                f"{exp_id}: {c.metric} deviates {c.ratio:.2f}x "
                f"(paper {c.paper}, ours {c.measured})"
            )

    def test_majority_within_40_percent(self, results):
        all_comparisons = [c for r in results.values() for c in r.comparisons]
        close = sum(1 for c in all_comparisons if 0.71 <= c.ratio <= 1.4)
        assert close / len(all_comparisons) > 0.7


class TestKeyShapes:
    def test_fig3_grouped_peak_location(self, results):
        grouped = results["fig3"].series_values("a-grouped/36T")
        assert max(grouped, key=grouped.get) == "4096"

    def test_fig5_cold_far_shape(self, results):
        cold = results["fig5"].series_values("far (1st run)")
        warm = results["fig5"].series_values("far (2nd run)")
        near = results["fig5"].series_values("near")
        for threads in ("4", "8", "18"):
            assert cold[threads] < warm[threads] < near["18"] * 1.01

    def test_fig6_ordering(self, results):
        series = results["fig6"].series
        two_near = max(series["a-pmem/2 Near"].values())
        two_far = max(series["a-pmem/2 Far"].values())
        shared = max(series["a-pmem/1 Near 1 Far"].values())
        assert two_near > two_far > shared

    def test_fig7_counterintuitive_law(self, results):
        grouped_4 = results["fig7"].series_values("a-grouped/4T")
        grouped_36 = results["fig7"].series_values("a-grouped/36T")
        best_4 = int(max(grouped_4, key=grouped_4.get))
        best_36 = int(max(grouped_36, key=grouped_36.get))
        assert best_36 < best_4

    def test_fig8_boomerang_edges(self, results):
        series = results["fig8"].series
        # Bottom edge: 4-6 threads stay hot from 4 KB out to 32 MB.
        row4 = series["b-individual/4T"]
        assert all(row4[s] > 10 for s in ("4096", "65536", str(1 << 25)))
        # Collapsed interior: 24 threads at 64 KB.
        assert series["b-individual/24T"]["65536"] < 7

    def test_fig10_far_write_needs_more_threads(self, results):
        far = results["fig10"].series_values("1 Far")
        near = results["fig10"].series_values("1 Near")
        assert int(max(far, key=far.get)) > int(max(near, key=near.get))

    def test_fig11_interference_monotone(self, results):
        reads = results["fig11"].series_values("read")
        assert reads["1/18"] > reads["4/18"] >= reads["6/18"]

    def test_fig12_hyperthreads_help_random(self, results):
        pmem_18 = results["fig12"].series_values("a-pmem/18T")
        pmem_36 = results["fig12"].series_values("a-pmem/36T")
        assert pmem_36["256"] > pmem_18["256"]

    def test_fig13_write_thread_optimum(self, results):
        s6 = results["fig13"].series_values("a-pmem/6T")
        s36 = results["fig13"].series_values("a-pmem/36T")
        assert max(s6.values()) > max(s36.values())

    def test_fig14_who_wins(self, results):
        series = results["fig14"].series
        for query in series["b-handcrafted/pmem"]:
            assert (
                series["b-handcrafted/pmem"][query]
                > series["b-handcrafted/dram"][query]
            )
            assert series["a-hyrise/pmem"][query] > series["a-hyrise/dram"][query]

    def test_table1_ladder_monotone(self, results):
        for media in ("pmem", "dram"):
            ladder = list(results["table1"].series_values(media).values())
            assert all(a >= b * 0.999 for a, b in zip(ladder, ladder[1:]))

    def test_bestpractices_all_hold(self, results):
        series = results["bestpractices"].series
        assert all(v == 1.0 for v in series["insights hold"].values())
        assert all(v == 1.0 for v in series["practices hold"].values())

    def test_daxmode_ordering(self, results):
        series = results["daxmode"].series
        for threads in ("8", "18"):
            assert series["fsdax"][threads] < series["devdax"][threads]
            assert series["fsdax (prefaulted)"][threads] == pytest.approx(
                series["devdax"][threads]
            )


class TestReportGeneration:
    def test_report_renders(self, results):
        from repro.experiments.report import generate_report

        text = generate_report(results)
        assert "# Experiments" in text
        assert "fig14" in text
        assert "| metric | paper | reproduction | ratio |" in text
        assert "largest deviation" in text
