"""Tests for the experiment registry and result containers."""

import pytest

from repro.errors import ExperimentError
from repro.experiments.registry import (
    REGISTRY,
    all_experiment_ids,
    get_experiment,
    run_experiment,
)
from repro.experiments.result import ExperimentResult, MetricComparison


class TestRegistry:
    def test_covers_every_paper_artifact(self):
        # Figures 3-14, Table 1, best practices, and the dax-mode study.
        expected = {f"fig{i}" for i in range(3, 15)} | {
            "table1",
            "bestpractices",
            "daxmode",
        }
        assert set(all_experiment_ids()) == expected

    def test_lookup(self):
        assert get_experiment("fig7").paper_section.startswith("4")

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")

    def test_ids_match_registry_keys(self):
        for exp_id, experiment in REGISTRY.items():
            assert experiment.exp_id == exp_id


class TestResultContainer:
    def test_duplicate_series_rejected(self):
        result = ExperimentResult(exp_id="x", title="t")
        result.add_series("a", {"1": 1.0})
        with pytest.raises(ExperimentError):
            result.add_series("a", {"1": 2.0})

    def test_missing_series(self):
        result = ExperimentResult(exp_id="x", title="t")
        with pytest.raises(ExperimentError):
            result.series_values("nope")

    def test_comparison_ratio(self):
        comparison = MetricComparison(metric="m", paper=10.0, measured=12.0)
        assert comparison.ratio == pytest.approx(1.2)

    def test_comparison_zero_paper_value(self):
        comparison = MetricComparison(metric="m", paper=0.0, measured=1.0)
        with pytest.raises(ExperimentError):
            _ = comparison.ratio

    def test_render_contains_series_and_comparisons(self):
        result = ExperimentResult(exp_id="x", title="demo")
        result.add_series("s", {"a": 1.0, "b": 2.0})
        result.compare("metric", 2.0, 2.2)
        text = result.render()
        assert "demo" in text
        assert "metric" in text
        assert "1.10x" in text

    def test_worst_ratio_error(self):
        result = ExperimentResult(exp_id="x", title="t")
        result.compare("good", 10.0, 10.0)
        result.compare("off", 10.0, 20.0)
        import math

        assert result.worst_ratio_error == pytest.approx(math.log(2.0))


class TestRunExperimentSmoke:
    def test_run_by_id(self):
        result = run_experiment("fig4")
        assert result.exp_id == "fig4"
        assert result.series
        assert result.comparisons
