"""Shared pytest configuration for the repository test suite."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help="rewrite tests/obs/goldens/*.json from the current model "
        "output instead of comparing against them (legitimate only when "
        "a model change is intentional — see tests/obs/test_goldens.py)",
    )


@pytest.fixture
def update_goldens(request) -> bool:
    """True when the run was invoked with ``--update-goldens``."""
    return bool(request.config.getoption("--update-goldens"))
