"""Tier-1 gate: the tree must be simlint-clean.

Runs the analyzer in-process over the repo's own ``[tool.simlint]``
configuration. Any new finding fails here — fix it, suppress it on the
line with a justification, or (exceptionally) baseline it with a reason
in ``simlint-baseline.json``.
"""

from pathlib import Path

from repro.analysis import load_config, run_analysis

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_repo_analysis():
    config = load_config(start=REPO_ROOT)
    assert config.root == REPO_ROOT, "expected the repo's own pyproject.toml"
    return run_analysis(config=config)


def test_tree_has_no_new_findings():
    report = run_repo_analysis()
    assert report.findings == [], "new simlint findings:\n" + "\n".join(
        f.render() for f in report.findings
    )


def test_baseline_has_no_stale_entries():
    report = run_repo_analysis()
    assert report.stale_baseline == [], (
        "baseline entries whose findings were fixed; remove them from "
        f"simlint-baseline.json: {report.stale_baseline}"
    )


def test_obs_package_is_lint_clean():
    """The observability package must hold itself to the catalogue rule."""
    config = load_config(start=REPO_ROOT)
    report = run_analysis(paths=[REPO_ROOT / "src" / "repro" / "obs"], config=config)
    assert report.findings == [], "\n".join(f.render() for f in report.findings)


def test_whole_program_contracts_hold():
    """The four interprocedural contracts, run repo-wide.

    SIM201: nothing reachable from the evaluation roots mutates shared
    state. SIM202: every type crossing the procpool boundary pickles.
    SIM203: emitted counter names and the catalogue round-trip with no
    drift in either direction. SIM204: no mixed-scale unit arithmetic
    flows across a function boundary.
    """
    config = load_config(start=REPO_ROOT)
    report = run_analysis(
        config=config, select=["SIM201", "SIM202", "SIM203", "SIM204"]
    )
    assert report.findings == [], "\n".join(f.render() for f in report.findings)


def test_counter_name_rule_is_registered():
    from repro.analysis.registry import all_rules

    codes = {rule.code for rule in all_rules()}
    assert "SIM104" in codes


def test_every_baseline_entry_has_a_reason():
    from repro.analysis import Baseline

    baseline = Baseline.load(REPO_ROOT / "simlint-baseline.json")
    for entry in baseline.entries:
        assert entry.get("reason", "").strip(), f"entry without reason: {entry}"
