"""Tests for the paper-workload generators."""

import pytest

from repro.memsim import BandwidthModel, Layout, MediaKind, Op, Pattern, PinningPolicy
from repro.workloads import (
    MULTISOCKET_READ_LABELS,
    PAPER_ACCESS_SIZES,
    PAPER_THREAD_COUNTS,
    mixed_grid,
    multisocket_read_scenarios,
    multisocket_write_scenarios,
    numa_locality_sweep,
    pinning_sweep,
    random_sweep,
    sequential_sweep,
)


class TestSequentialSweep:
    def test_covers_full_grid(self):
        grid = sequential_sweep(Op.READ)
        assert len(grid) == len(PAPER_ACCESS_SIZES) * len(PAPER_THREAD_COUNTS)

    def test_streams_match_params(self):
        grid = sequential_sweep(Op.READ)
        point = grid.point("18T/4096B")
        (spec,) = point.streams
        assert spec.threads == 18
        assert spec.access_size == 4096
        assert spec.op is Op.READ
        assert spec.pinning is PinningPolicy.NUMA_REGION

    def test_write_sweep_uses_write_thread_counts(self):
        grid = sequential_sweep(Op.WRITE)
        threads = {p.params["threads"] for p in grid}
        assert 2 in threads  # write figures include 2 threads
        assert 16 not in threads

    def test_layout_respected(self):
        grid = sequential_sweep(Op.READ, layout=Layout.INDIVIDUAL)
        assert all(s.layout is Layout.INDIVIDUAL for p in grid for s in p.streams)

    def test_all_points_evaluate(self):
        model = BandwidthModel()
        grid = sequential_sweep(
            Op.READ, access_sizes=(64, 4096), thread_counts=(1, 18)
        )
        for point in grid:
            assert model.evaluate(list(point.streams)).total_gbps > 0


class TestPinningSweep:
    def test_three_policies(self):
        grid = pinning_sweep(Op.READ)
        policies = {p.params["policy"] for p in grid}
        assert policies == {
            PinningPolicy.NONE,
            PinningPolicy.NUMA_REGION,
            PinningPolicy.CORES,
        }

    def test_individual_4k(self):
        grid = pinning_sweep(Op.WRITE)
        for point in grid:
            (spec,) = point.streams
            assert spec.access_size == 4096
            assert spec.layout is Layout.INDIVIDUAL


class TestNumaSweep:
    def test_near_and_far(self):
        grid = numa_locality_sweep(Op.READ)
        localities = {p.params["locality"] for p in grid}
        assert localities == {"near", "far"}

    def test_far_points_cross_sockets(self):
        grid = numa_locality_sweep(Op.WRITE)
        for point in grid:
            (spec,) = point.streams
            assert spec.far == (point.params["locality"] == "far")


class TestMultisocket:
    def test_read_scenarios_cover_figure6(self):
        grid = multisocket_read_scenarios(thread_counts=(18,))
        scenarios = {p.params["scenario"] for p in grid}
        assert scenarios == set(MULTISOCKET_READ_LABELS)

    def test_two_socket_scenarios_have_two_streams(self):
        grid = multisocket_read_scenarios(thread_counts=(18,))
        for point in grid:
            single = point.params["scenario"] in ("1 Near", "1 Far")
            assert len(point.streams) == (1 if single else 2)

    def test_shared_target_scenario_targets_socket0(self):
        grid = multisocket_read_scenarios(thread_counts=(18,))
        point = grid.point("1 Near 1 Far/18T")
        assert {s.target_socket for s in point.streams} == {0}
        assert {s.issuing_socket for s in point.streams} == {0, 1}

    def test_write_scenarios_dram_supported(self):
        grid = multisocket_write_scenarios(
            media=MediaKind.DRAM, thread_counts=(4,)
        )
        assert all(
            s.media is MediaKind.DRAM for p in grid for s in p.streams
        )


class TestMixedGrid:
    def test_twelve_combinations(self):
        grid = mixed_grid()
        assert len(grid) == 12  # 3 writer counts x 4 reader counts

    def test_each_point_has_reader_and_writer(self):
        grid = mixed_grid()
        for point in grid:
            ops = {s.op for s in point.streams}
            assert ops == {Op.READ, Op.WRITE}

    def test_forty_gb_datasets(self):
        grid = mixed_grid()
        for point in grid:
            assert all(s.total_bytes == 40 * 1024**3 for s in point.streams)


class TestRandomSweep:
    def test_sizes_capped_at_8k(self):
        grid = random_sweep(Op.READ)
        assert max(p.params["access_size"] for p in grid) == 8192

    def test_pattern_is_random(self):
        grid = random_sweep(Op.WRITE)
        assert all(s.pattern is Pattern.RANDOM for p in grid for s in p.streams)

    def test_default_region_is_2gib(self):
        grid = random_sweep(Op.READ)
        assert all(s.region_bytes == 2 * 1024**3 for p in grid for s in p.streams)
