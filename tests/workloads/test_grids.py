"""Tests for sweep-grid plumbing."""

import pytest

from repro.errors import WorkloadError
from repro.memsim.spec import Op, StreamSpec
from repro.workloads import SweepGrid, SweepPoint


def _point(label):
    return SweepPoint(
        label=label,
        params={},
        streams=(StreamSpec(op=Op.READ, threads=1),),
    )


class TestSweepPoint:
    def test_requires_streams(self):
        with pytest.raises(WorkloadError):
            SweepPoint(label="x", params={}, streams=())


class TestSweepGrid:
    def test_iteration_preserves_order(self):
        grid = SweepGrid(name="g", points=(_point("a"), _point("b")))
        assert grid.labels() == ["a", "b"]
        assert len(grid) == 2

    def test_lookup_by_label(self):
        grid = SweepGrid(name="g", points=(_point("a"), _point("b")))
        assert grid.point("b").label == "b"

    def test_missing_label(self):
        grid = SweepGrid(name="g", points=(_point("a"),))
        with pytest.raises(WorkloadError):
            grid.point("zzz")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(WorkloadError):
            SweepGrid(name="g", points=(_point("a"), _point("a")))

    def test_empty_grid_rejected(self):
        with pytest.raises(WorkloadError):
            SweepGrid(name="g", points=())
