"""Determinism regression: fixed seed => bit-identical results.

This is the invariant the SIM101/SIM102 determinism lint rules exist to
protect: rerunning a simulation with the same seed must reproduce every
output float exactly, not approximately.
"""

import dataclasses
import json

from repro.memsim.engine import EngineConfig, simulate
from repro.memsim.spec import Layout, Op, Pattern
from repro.ssb.queries import ALL_QUERIES
from repro.ssb.runner import SsbRunner
from repro.ssb.storage import HANDCRAFTED_PMEM
from repro.units import MIB


class TestEngineDeterminism:
    def test_same_seed_is_bit_identical(self):
        def one_run():
            config = EngineConfig(
                op=Op.READ, threads=4, access_size=4096,
                layout=Layout.GROUPED, pattern=Pattern.SEQUENTIAL,
                total_bytes=8 * MIB, seed=11,
            )
            return dataclasses.asdict(simulate(config))

        first, second = one_run(), one_run()
        # Exact dict equality (== on floats is exact) plus a serialised
        # comparison so NaN or -0.0 drift cannot hide behind __eq__.
        assert first == second
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)

    def test_random_pattern_same_seed_is_bit_identical(self):
        def one_run():
            config = EngineConfig(
                op=Op.WRITE, threads=2, access_size=256,
                pattern=Pattern.RANDOM, region_bytes=4 * MIB,
                total_bytes=2 * MIB, seed=23,
            )
            return dataclasses.asdict(simulate(config))

        assert one_run() == one_run()


class TestSsbDeterminism:
    def test_same_seed_query_pricing_is_bit_identical(self):
        def one_run():
            runner = SsbRunner(measured_sf=0.01, seed=5)
            run = runner.run(
                HANDCRAFTED_PMEM, target_sf=100.0, queries=(ALL_QUERIES[0],)
            )
            return run.seconds

        first, second = one_run(), one_run()
        assert first == second
        assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)
