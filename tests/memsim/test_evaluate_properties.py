"""Property-based tests of multi-stream evaluation invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import (
    BandwidthModel,
    MediaKind,
    Op,
    PinningPolicy,
    StreamSpec,
)

_MODEL = BandwidthModel()

ops = st.sampled_from([Op.READ, Op.WRITE])
medias = st.sampled_from([MediaKind.PMEM, MediaKind.DRAM])
threads = st.integers(min_value=1, max_value=36)
sockets = st.integers(min_value=0, max_value=1)
sizes = st.sampled_from([64, 256, 4096, 65536])


def _spec(op, media, thread_count, issuing, target, size):
    return StreamSpec(
        op=op,
        threads=thread_count,
        access_size=size,
        media=media,
        issuing_socket=issuing,
        target_socket=target,
        pinning=PinningPolicy.NUMA_REGION,
    )


class TestMultiStreamInvariants:
    @given(
        op1=ops, op2=ops, media=medias,
        t1=threads, t2=threads,
        i1=sockets, i2=sockets, g1=sockets, g2=sockets,
        size=sizes,
    )
    @settings(max_examples=60, deadline=None)
    def test_contention_never_helps(self, op1, op2, media, t1, t2, i1, i2, g1, g2, size):
        """No stream gains bandwidth from another stream's presence."""
        _MODEL.warm_directory()
        a = _spec(op1, media, t1, i1, g1, size)
        b = _spec(op2, media, t2, i2, g2, size)
        together = _MODEL.evaluate([a, b])
        _MODEL.warm_directory()
        alone_a = _MODEL.evaluate([a]).total_gbps
        _MODEL.warm_directory()
        alone_b = _MODEL.evaluate([b]).total_gbps
        assert together.streams[0].gbps <= alone_a * 1.001
        assert together.streams[1].gbps <= alone_b * 1.001
        assert together.total_gbps <= (alone_a + alone_b) * 1.001

    @given(op=ops, media=medias, t=threads, size=sizes)
    @settings(max_examples=40, deadline=None)
    def test_evaluation_is_deterministic(self, op, media, t, size):
        _MODEL.warm_directory()
        spec = _spec(op, media, t, 0, 0, size)
        first = _MODEL.evaluate([spec]).total_gbps
        second = _MODEL.evaluate([spec]).total_gbps
        assert first == second

    @given(op=ops, t=threads, size=sizes)
    @settings(max_examples=40, deadline=None)
    def test_counters_track_volume(self, op, t, size):
        _MODEL.warm_directory()
        spec = _spec(op, MediaKind.PMEM, t, 0, 0, size)
        result = _MODEL.evaluate([spec])
        counters = result.counters
        if op is Op.READ:
            assert counters.app_bytes_read == spec.total_bytes
            assert counters.media_bytes_read >= counters.app_bytes_read * 0.999
        else:
            assert counters.app_bytes_written == spec.total_bytes
            assert counters.media_bytes_written >= counters.app_bytes_written * 0.999

    @given(t=threads, size=sizes)
    @settings(max_examples=30, deadline=None)
    def test_far_streams_account_upi(self, t, size):
        _MODEL.warm_directory()
        far = _spec(Op.READ, MediaKind.PMEM, t, 0, 1, size)
        result = _MODEL.evaluate([far])
        assert result.counters.upi_bytes == far.total_bytes
        assert result.counters.upi_utilization > 0

    @given(t=threads, size=sizes)
    @settings(max_examples=30, deadline=None)
    def test_near_streams_do_not_touch_upi(self, t, size):
        _MODEL.warm_directory()
        near = _spec(Op.READ, MediaKind.PMEM, t, 0, 0, size)
        result = _MODEL.evaluate([near])
        assert result.counters.upi_bytes == 0
        assert result.counters.upi_utilization == 0
