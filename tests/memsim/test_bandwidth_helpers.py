"""Tests for the bandwidth module's public helpers."""

import math

import pytest

from repro.errors import WorkloadError
from repro.memsim.bandwidth import (
    effective_threads,
    is_finite_bandwidth,
    ssd_scan_bandwidth,
)
from repro.memsim.calibration import paper_calibration


class TestEffectiveThreads:
    def test_below_core_count_is_identity(self):
        assert effective_threads(8, 18) == 8

    def test_hyperthreads_yield_quarter(self):
        assert effective_threads(36, 18) == pytest.approx(22.5)

    def test_invalid(self):
        with pytest.raises(WorkloadError):
            effective_threads(0, 18)
        with pytest.raises(WorkloadError):
            effective_threads(4, 0)


class TestSsdBandwidth:
    def test_matches_calibration(self):
        cal = paper_calibration()
        assert ssd_scan_bandwidth(cal) == cal.ssd.seq_read_max

    def test_footnote_value(self):
        # §6.2 footnote: Intel DC P4610, 3.20 GB/s sequential read.
        assert ssd_scan_bandwidth(paper_calibration()) == pytest.approx(3.2)


class TestFiniteBandwidthGuard:
    @pytest.mark.parametrize("value,expected", [
        (0.0, True),
        (40.0, True),
        (-1.0, False),
        (math.inf, False),
        (math.nan, False),
    ])
    def test_cases(self, value, expected):
        assert is_finite_bandwidth(value) is expected
