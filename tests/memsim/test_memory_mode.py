"""Tests for the Memory Mode model (§2.1's second operating mode)."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.memsim import BandwidthModel, MediaKind
from repro.memsim.memory_mode import MemoryModeConfig, MemoryModeModel
from repro.memsim.spec import Pattern
from repro.units import GIB


@pytest.fixture(scope="module")
def mode():
    return MemoryModeModel(BandwidthModel())


class TestConfig:
    def test_defaults_match_paper_server(self):
        config = MemoryModeConfig()
        assert config.dram_cache_bytes == 93 * GIB
        assert config.pmem_bytes == 768 * GIB

    def test_cache_must_be_smaller_than_pmem(self):
        with pytest.raises(ConfigurationError):
            MemoryModeConfig(dram_cache_bytes=2 * GIB, pmem_bytes=GIB)


class TestHitRate:
    def test_fitting_working_set_always_hits(self, mode):
        assert mode.hit_rate(10 * GIB, Pattern.SEQUENTIAL) == 1.0
        assert mode.hit_rate(10 * GIB, Pattern.RANDOM) == 1.0

    def test_streaming_beyond_cache_never_hits(self, mode):
        assert mode.hit_rate(200 * GIB, Pattern.SEQUENTIAL) == 0.0

    def test_random_hits_with_capacity_ratio(self, mode):
        rate = mode.hit_rate(186 * GIB, Pattern.RANDOM)
        assert rate == pytest.approx(0.5, rel=0.01)

    def test_invalid_working_set(self, mode):
        with pytest.raises(WorkloadError):
            mode.hit_rate(0, Pattern.RANDOM)


class TestBandwidth:
    def test_cached_working_set_runs_at_dram_speed(self, mode):
        cached = mode.read_bandwidth(18, 4096, working_set_bytes=10 * GIB)
        dram = mode.model.sequential_read(18, 4096, media=MediaKind.DRAM)
        assert cached == pytest.approx(dram)

    def test_large_scan_is_slower_than_app_direct(self, mode):
        # Beyond the cache, Memory Mode pays PMEM *plus* cache fills —
        # the reason OLAP research prefers App Direct (§2.1).
        comparison = mode.compare_app_direct(18, 4096, working_set_bytes=700 * GIB)
        assert comparison["memory_mode_gbps"] < comparison["app_direct_gbps"]
        assert comparison["app_direct_gbps"] < comparison["dram_gbps"]

    def test_bandwidth_monotone_in_working_set(self, mode):
        values = [
            mode.read_bandwidth(18, 4096, ws, pattern=Pattern.RANDOM)
            for ws in (50 * GIB, 100 * GIB, 200 * GIB, 700 * GIB)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_small_writes_absorbed_by_cache(self, mode):
        cached = mode.write_bandwidth(18, 4096, working_set_bytes=10 * GIB)
        dram = mode.model.sequential_write(18, 4096, media=MediaKind.DRAM)
        assert cached == pytest.approx(dram)

    def test_large_writes_bound_by_writeback(self, mode):
        large = mode.write_bandwidth(6, 4096, working_set_bytes=700 * GIB)
        pmem = mode.model.sequential_write(6, 4096)
        assert large < pmem  # pays the DRAM pass *and* the writeback

    def test_no_persistence(self, mode):
        assert not mode.is_persistent()
