"""Per-family bit-identity suites for the widened batched kernel.

The first-generation kernel priced only plain pinned near-socket
sequential points; everything else fell back to the scalar evaluator.
This suite pins the widened contract family by family: random-pattern,
cross-socket (remote), unpinned, fsdax, and multi-stream points — plus
arbitrary combinations — are all priced on the vector fast path and
remain bit-identical to per-point ``evaluate``, including recorder
emission. The residual fallback set (``classify_point``) is pinned to
genuinely unpriceable points only, and every fallback is observable via
the ``sweep.vector.fallback_count`` counter family.
"""

import dataclasses
import random

import pytest

from repro.errors import TopologyError, WorkloadError
from repro.memsim import (
    DaxMode,
    DirectoryState,
    Layout,
    MediaKind,
    Op,
    Pattern,
    PinningPolicy,
    StreamSpec,
    eval_context,
    evaluate,
    paper_config,
)
from repro.memsim.config import MachineConfig
from repro.memsim.kernels import (
    FALLBACK_REASONS,
    classify_point,
    evaluate_grid,
    evaluate_points_columns,
    vector_eligible,
)
from repro.memsim.topology import paper_server
from repro.obs import CountersRecorder
from tests.memsim.test_kernels import THREADS, assert_identical, sample_grid

SIZES = (64, 128, 256, 512, 1024, 4096, 16384)
REGIONS = (1 << 28, 1 << 30, 16 << 30, 70_000_000_000)


def _base(rng: random.Random) -> StreamSpec:
    return StreamSpec(
        op=rng.choice((Op.READ, Op.WRITE)),
        threads=rng.choice(THREADS),
        access_size=rng.choice(SIZES),
        media=rng.choice((MediaKind.PMEM, MediaKind.PMEM, MediaKind.DRAM)),
        layout=rng.choice((Layout.INDIVIDUAL, Layout.GROUPED)),
        region_bytes=rng.choice(REGIONS),
    )


def random_point(rng: random.Random) -> tuple[StreamSpec, ...]:
    """Random-pattern streams, optionally also far or unpinned."""
    spec = _base(rng).with_(pattern=Pattern.RANDOM)
    if rng.random() < 0.3:
        spec = spec.with_(issuing_socket=rng.choice((0, 1)))
        spec = spec.with_(target_socket=1 - spec.issuing_socket)
    if rng.random() < 0.3:
        spec = spec.with_(pinning=PinningPolicy.NONE)
    return (spec,)


def remote_point(rng: random.Random) -> tuple[StreamSpec, ...]:
    """Cross-socket streams in both directions, both media, both ops."""
    issuing = rng.choice((0, 1))
    return (_base(rng).with_(issuing_socket=issuing, target_socket=1 - issuing),)


def unpinned_point(rng: random.Random) -> tuple[StreamSpec, ...]:
    """``PinningPolicy.NONE`` streams, optionally far."""
    spec = _base(rng).with_(pinning=PinningPolicy.NONE)
    if rng.random() < 0.3:
        spec = spec.with_(issuing_socket=0, target_socket=1)
    return (spec,)


def fsdax_point(rng: random.Random) -> tuple[StreamSpec, ...]:
    """fsdax PMEM streams across region sizes, prefaulted or cold."""
    spec = _base(rng).with_(
        media=MediaKind.PMEM,
        dax_mode=DaxMode.FSDAX,
        prefaulted=rng.random() < 0.3,
    )
    if rng.random() < 0.25:
        spec = spec.with_(pattern=Pattern.RANDOM)
    return (spec,)


def multi_point(rng: random.Random) -> tuple[StreamSpec, ...]:
    """Two- and three-stream points whose members span all families."""
    streams = []
    for _ in range(rng.choice((2, 2, 3))):
        spec = _base(rng)
        roll = rng.random()
        if roll < 0.2:
            spec = spec.with_(pattern=Pattern.RANDOM)
        elif roll < 0.4:
            issuing = rng.choice((0, 1))
            spec = spec.with_(issuing_socket=issuing, target_socket=1 - issuing)
        elif roll < 0.55:
            spec = spec.with_(pinning=PinningPolicy.NONE)
        elif roll < 0.7 and spec.media is MediaKind.PMEM:
            spec = spec.with_(dax_mode=DaxMode.FSDAX)
        streams.append(spec)
    return tuple(streams)


FAMILIES = {
    "random": random_point,
    "remote": remote_point,
    "unpinned": unpinned_point,
    "fsdax": fsdax_point,
    "multi": multi_point,
}


def family_grid(family: str, seed: int, n: int) -> list[tuple[StreamSpec, ...]]:
    rng = random.Random(seed)
    sampler = FAMILIES[family]
    return [sampler(rng) for _ in range(n)]


class TestFamilyBitIdentity:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_cold_directory(self, family):
        config = paper_config()
        context = eval_context(config)
        points = family_grid(family, seed=0xC0FFEE, n=48)
        assert all(vector_eligible(context, p) for p in points)
        state = DirectoryState.cold()
        batched = evaluate_grid(context, points, state)
        assert len(batched) == len(points)
        for streams, got in zip(points, batched):
            assert_identical(got, evaluate(config, streams, state, context=context))

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_warm_directory(self, family):
        # Far reads consult directory warmth; every family must price
        # identically against a fully warm directory too.
        config = paper_config()
        context = eval_context(config)
        warm = DirectoryState.warm(config.topology)
        points = family_grid(family, seed=1879, n=32)
        batched = evaluate_grid(context, points, warm)
        for streams, got in zip(points, batched):
            assert_identical(got, evaluate(config, streams, warm, context=context))

    def test_ablation_configs(self):
        # The kernel reads calibration and toggles off the shared
        # context; the what-if ablations must not break bit-identity.
        for toggles in (
            {"prefetcher_enabled": False},
            {"write_combining_enabled": False},
        ):
            config = MachineConfig(**toggles)
            context = eval_context(config)
            state = DirectoryState.cold()
            for family in sorted(FAMILIES):
                points = family_grid(family, seed=52, n=8)
                for streams, got in zip(
                    points, evaluate_grid(context, points, state)
                ):
                    assert_identical(
                        got, evaluate(config, streams, state, context=context)
                    )


class TestFamilyEmissionParity:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_grid_recorder_matches_scalar(self, family):
        # Deferred emission replays probes from the columns in point
        # order; counter folds are order-sensitive at the last ulp, so
        # snapshots must be byte-identical, family by family.
        config = paper_config()
        context = eval_context(config)
        points = family_grid(family, seed=31337, n=24)
        state = DirectoryState.cold()
        grid_rec, scalar_rec = CountersRecorder(), CountersRecorder()
        evaluate_grid(context, points, state, recorder=grid_rec)
        for streams in points:
            evaluate(config, streams, state, recorder=scalar_rec, context=context)
        assert grid_rec.snapshot() == scalar_rec.snapshot()

    def test_deferred_emit_is_callable_out_of_band(self):
        # The columns API hands emission to the caller: emitting later
        # (the sweep service defers until after cache bookkeeping) must
        # produce the same snapshot as inline per-point emission.
        config = paper_config()
        context = eval_context(config)
        points = family_grid("multi", seed=9, n=12)
        state = DirectoryState.cold()
        columns, emit = evaluate_points_columns(context, points, state)
        deferred, inline = CountersRecorder(), CountersRecorder()
        for i in range(len(points)):
            emit(deferred, i)
        for streams in points:
            evaluate(config, streams, state, recorder=inline, context=context)
        assert deferred.snapshot() == inline.snapshot()


class TestClassifyPoint:
    def test_vector_eligible_is_classify_is_none(self):
        # The boolean predicate must never drift from the classifier.
        context = eval_context(paper_config())
        corpus = sample_grid(seed=404, n=64)
        for family in sorted(FAMILIES):
            corpus += family_grid(family, seed=405, n=8)
        corpus.append(())
        corpus.append((StreamSpec(op=Op.READ, threads=4, target_socket=9),))
        for point in corpus:
            reason = classify_point(context, point)
            assert vector_eligible(context, point) is (reason is None)
            assert reason is None or reason in FALLBACK_REASONS

    def test_empty_point_is_empty(self):
        context = eval_context(paper_config())
        assert classify_point(context, ()) == "empty"

    def test_unknown_socket_is_socket(self):
        context = eval_context(paper_config())
        spec = StreamSpec(op=Op.READ, threads=4)
        assert classify_point(context, (spec.with_(target_socket=9),)) == "socket"
        assert classify_point(context, (spec.with_(issuing_socket=9),)) == "socket"

    def test_pmem_on_pmemless_socket_is_media(self):
        # A topology with no PMEM behind socket 1: PMEM streams that
        # target it are unpriceable (no interleave map), DRAM streams
        # stay on the fast path.
        topo = paper_server()
        stripped = dataclasses.replace(
            topo,
            dimms=tuple(
                d
                for d in topo.dimms
                if not (d.socket_id == 1 and d.kind is MediaKind.PMEM)
            ),
        )
        stripped.validate()
        context = eval_context(MachineConfig(topology=stripped))
        pmem = StreamSpec(op=Op.READ, threads=4, media=MediaKind.PMEM)
        dram = pmem.with_(media=MediaKind.DRAM)
        assert classify_point(context, (pmem.with_(target_socket=1),)) == "media"
        assert (
            classify_point(
                context, (pmem.with_(target_socket=1, pattern=Pattern.RANDOM),)
            )
            == "media"
        )
        assert classify_point(context, (pmem,)) is None
        assert classify_point(context, (dram.with_(target_socket=1),)) is None


class TestFallbackObservability:
    def assert_fallback_counted(self, point, reason, raises):
        context = eval_context(paper_config())
        eligible = (StreamSpec(op=Op.READ, threads=4),)
        recorder = CountersRecorder()
        with pytest.raises(raises):
            evaluate_grid(context, [eligible, point], recorder=recorder)
        counters = recorder.snapshot()["counters"]
        assert counters["sweep.vector.fallback_count"] == 1
        assert counters[f"sweep.vector.fallback.{reason}_count"] == 1

    def test_empty_point_counts_before_raising(self):
        self.assert_fallback_counted((), "empty", WorkloadError)

    def test_unknown_socket_counts_before_raising(self):
        bad = (StreamSpec(op=Op.READ, threads=4, target_socket=9),)
        self.assert_fallback_counted(bad, "socket", TopologyError)

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_families_never_fall_back(self, family):
        context = eval_context(paper_config())
        points = family_grid(family, seed=77, n=16)
        recorder = CountersRecorder()
        evaluate_grid(context, points, recorder=recorder)
        counters = recorder.snapshot()["counters"]
        assert "sweep.vector.fallback_count" not in counters
