"""Tests for the OS scheduler / pinning model."""

import pytest

from repro.errors import WorkloadError
from repro.memsim.calibration import paper_calibration
from repro.memsim.scheduler import PinningPolicy, SchedulerModel


@pytest.fixture(scope="module")
def scheduler():
    return SchedulerModel(paper_calibration().cpu)


class TestPlacement:
    def test_no_hyperthreads_below_core_count(self, scheduler):
        placement = scheduler.placement(18, 18)
        assert placement.hyperthreaded == 0
        assert placement.effective_issue_threads == 18

    def test_hyperthreads_contribute_fractionally(self, scheduler):
        placement = scheduler.placement(36, 18)
        assert placement.hyperthreaded == 18
        # 18 physical + 18 * 0.25 hyperthread yield.
        assert placement.effective_issue_threads == pytest.approx(22.5)

    def test_invalid(self, scheduler):
        with pytest.raises(WorkloadError):
            scheduler.placement(0, 18)


class TestPinnedFactors:
    def test_cores_is_reference(self, scheduler):
        assert scheduler.pinned_factor(PinningPolicy.CORES, 36, 18, write=False) == 1.0
        assert scheduler.pinned_factor(PinningPolicy.CORES, 36, 18, write=True) == 1.0

    def test_numa_matches_cores_below_core_count(self, scheduler):
        # Fig. 4: identical bandwidth for <=18 threads.
        factor = scheduler.pinned_factor(PinningPolicy.NUMA_REGION, 18, 18, write=False)
        assert factor == 1.0

    def test_numa_costs_beyond_core_count(self, scheduler):
        factor = scheduler.pinned_factor(PinningPolicy.NUMA_REGION, 36, 18, write=False)
        assert 0.9 < factor < 1.0

    def test_numa_write_penalty_from_imc_crossing(self, scheduler):
        read = scheduler.pinned_factor(PinningPolicy.NUMA_REGION, 8, 18, write=False)
        write = scheduler.pinned_factor(PinningPolicy.NUMA_REGION, 8, 18, write=True)
        assert write < read

    def test_none_policy_rejected_here(self, scheduler):
        with pytest.raises(WorkloadError):
            scheduler.pinned_factor(PinningPolicy.NONE, 8, 18, write=False)


class TestUnpinned:
    def test_read_envelope_tracks_cold_far(self, scheduler):
        # Fig. 4: unpinned reads peak near ~9 GB/s, just above the ~8 GB/s
        # cold-far ceiling.
        envelope = scheduler.unpinned_read_envelope(8.0)
        assert 8.0 < envelope < 10.0

    def test_write_factor_roughly_halves(self, scheduler):
        # Fig. 9: "no pinning is 2x worse for writing".
        assert scheduler.unpinned_write_factor() == pytest.approx(0.55)

    def test_envelope_rejects_bad_cap(self, scheduler):
        with pytest.raises(WorkloadError):
            scheduler.unpinned_read_envelope(0.0)
