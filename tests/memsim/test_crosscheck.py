"""Tests for the analytic-vs-DES cross-validation harness."""

import pytest

from repro.errors import ConfigurationError
from repro.memsim.crosscheck import (
    DEFAULT_ANCHORS,
    AnchorConfig,
    AnchorOutcome,
    CrossCheckReport,
    cross_check,
)
from repro.memsim.spec import Layout, Op

#: The one documented divergence: the replay has no write-side DIMM
#: window-clustering penalty, so grouped sub-line writes land near the
#: pure RMW bound instead of the paper's measured collapse (the analytic
#: model owns that effect). See EXPERIMENTS.md "Known deviations".
KNOWN_DIVERGENT = {"write 36T 64B grouped"}


@pytest.fixture(scope="module")
def report():
    return cross_check()


class TestAgreement:
    def test_all_undocumented_anchors_agree(self, report):
        for outcome in report.outcomes:
            if outcome.anchor.label in KNOWN_DIVERGENT:
                continue
            assert outcome.agrees, (
                f"{outcome.anchor.label}: analytic {outcome.analytic_gbps:.2f} "
                f"vs engine {outcome.engine_gbps:.2f}"
            )

    def test_most_anchors_within_ten_percent(self, report):
        tight = [
            o for o in report.outcomes
            if o.anchor.label not in KNOWN_DIVERGENT and o.relative_error < 0.10
        ]
        assert len(tight) >= 0.8 * (len(report.outcomes) - len(KNOWN_DIVERGENT))

    def test_known_divergence_is_flagged_not_hidden(self, report):
        divergent = [o for o in report.outcomes if not o.agrees]
        assert {o.anchor.label for o in divergent} == KNOWN_DIVERGENT

    def test_describe_marks_divergence(self, report):
        text = report.describe()
        assert "DIVERGES" in text
        assert "worst:" in text


class TestHarness:
    def test_custom_anchor_set(self):
        anchors = (AnchorConfig("one", Op.READ, 4, 4096),)
        report = cross_check(anchors)
        assert len(report.outcomes) == 1
        assert report.all_agree

    def test_empty_anchor_set_rejected(self):
        with pytest.raises(ConfigurationError):
            cross_check(())

    def test_empty_report_worst_rejected(self):
        with pytest.raises(ConfigurationError):
            _ = CrossCheckReport().worst

    def test_outcome_relative_error(self):
        outcome = AnchorOutcome(
            anchor=AnchorConfig("x", Op.READ, 1, 4096, tolerance=0.1),
            analytic_gbps=10.0,
            engine_gbps=10.5,
        )
        assert outcome.relative_error == pytest.approx(0.05)
        assert outcome.agrees

    def test_default_anchor_coverage(self):
        # The anchor set must cover both ops, both layouts, and random.
        ops = {a.op for a in DEFAULT_ANCHORS}
        layouts = {a.layout for a in DEFAULT_ANCHORS}
        assert ops == {Op.READ, Op.WRITE}
        assert Layout.GROUPED in layouts
        assert any(a.pattern.value == "random" for a in DEFAULT_ANCHORS)
