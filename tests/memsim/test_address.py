"""Tests for interleaving arithmetic and dax-mode modeling."""

import pytest

from repro.errors import ConfigurationError
from repro.memsim.address import (
    DaxMode,
    InterleaveMap,
    MappedRegion,
    fsdax_bandwidth_factor,
)
from repro.units import GIB


@pytest.fixture
def interleave():
    return InterleaveMap(ways=6)


class TestDimmOf:
    def test_first_stripe_on_dimm_zero(self, interleave):
        assert interleave.dimm_of(0) == 0
        assert interleave.dimm_of(4095) == 0

    def test_round_robin(self, interleave):
        # Figure 2: 4 KB steps rotate through DIMMs 0..5 and wrap.
        assert interleave.dimm_of(4096) == 1
        assert interleave.dimm_of(5 * 4096) == 5
        assert interleave.dimm_of(6 * 4096) == 0

    def test_negative_address_rejected(self, interleave):
        with pytest.raises(ConfigurationError):
            interleave.dimm_of(-1)


class TestDimmsTouched:
    def test_small_access_touches_one_dimm(self, interleave):
        assert interleave.dimms_touched(0, 256) == frozenset({0})

    def test_aligned_4k_touches_exactly_one_dimm(self, interleave):
        # §4.1: "aligned 4 KB writes target exactly one DIMM".
        assert interleave.dimms_touched(4096, 4096) == frozenset({1})

    def test_unaligned_4k_straddles_two_dimms(self, interleave):
        assert interleave.dimms_touched(2048, 4096) == frozenset({0, 1})

    def test_large_access_touches_all(self, interleave):
        # Data larger than 20 KB is striped across all six DIMMs (§2.1).
        assert interleave.dimms_touched(0, 24 * 1024) == frozenset(range(6))

    def test_wraps_around(self, interleave):
        touched = interleave.dimms_touched(5 * 4096, 2 * 4096)
        assert touched == frozenset({5, 0})

    def test_zero_size_rejected(self, interleave):
        with pytest.raises(ConfigurationError):
            interleave.dimms_touched(0, 0)


class TestSpanAndWindow:
    def test_span_dimm_count_aligned(self, interleave):
        assert interleave.span_dimm_count(4096) == 1
        assert interleave.span_dimm_count(8192) == 2
        assert interleave.span_dimm_count(1 << 20) == 6

    def test_window_parallelism_grows_with_window(self, interleave):
        small = interleave.window_parallelism(64 * 36)  # 2.3 KB
        large = interleave.window_parallelism(4096 * 36)
        assert small < 2.0
        assert large == 6.0

    def test_window_parallelism_capped_at_ways(self, interleave):
        assert interleave.window_parallelism(1 << 30) == 6.0

    def test_invalid_ways(self):
        with pytest.raises(ConfigurationError):
            InterleaveMap(ways=0)


class TestMappedRegion:
    def test_devdax_never_faults(self):
        region = MappedRegion(size=GIB, dax_mode=DaxMode.DEVDAX)
        assert region.fault_cost(0.5e-3) == 0.0

    def test_prefaulted_fsdax_never_faults(self):
        region = MappedRegion(size=GIB, dax_mode=DaxMode.FSDAX, prefaulted=True)
        assert region.fault_cost(0.5e-3) == 0.0

    def test_cold_fsdax_pays_quarter_second_per_gib(self):
        # §2.3: pre-faulting 1 GB takes at least 0.25 s at 0.5 ms / 2 MB.
        region = MappedRegion(size=GIB, dax_mode=DaxMode.FSDAX)
        assert region.fault_cost(0.5e-3) == pytest.approx(0.256, rel=0.01)

    def test_page_count(self):
        region = MappedRegion(size=GIB, dax_mode=DaxMode.FSDAX)
        assert region.pages == 512

    def test_rejects_empty_region(self):
        with pytest.raises(ConfigurationError):
            MappedRegion(size=0)


class TestFsdaxFactor:
    def test_devdax_advantage_band(self):
        # devdax is 5-10% faster => fsdax factor between 1/1.10 and 1/1.05.
        factor = fsdax_bandwidth_factor(0.075)
        assert 1 / 1.10 < factor < 1 / 1.05

    def test_zero_advantage_is_identity(self):
        assert fsdax_bandwidth_factor(0.0) == 1.0

    def test_negative_advantage_rejected(self):
        with pytest.raises(ConfigurationError):
            fsdax_bandwidth_factor(-0.1)
