"""Mixed read/write interference tests (paper §5.1 / Fig. 11)."""

import pytest

from repro.errors import WorkloadError
from repro.memsim import BandwidthModel, MediaKind
from repro.memsim.calibration import paper_calibration
from repro.memsim.mixed import interference_factors, resolve


@pytest.fixture
def model():
    return BandwidthModel()


@pytest.fixture(scope="module")
def cal():
    return paper_calibration()


class TestMixedOutcomes:
    def test_single_writer_dents_reader_pool(self, model):
        # §5.1: 30 readers drop from ~31 to ~26 GB/s with one writer —
        # roughly a 15-30% haircut.
        out = model.mixed(write_threads=1, read_threads=30)
        assert 0.6 < out.read_retention < 0.85

    def test_single_reader_barely_dents_writers(self, model):
        # §5.1: 4 writers keep ~12 of ~13 GB/s against one reader.
        out = model.mixed(write_threads=4, read_threads=1)
        assert out.write_retention > 0.90

    def test_saturating_readers_crush_writers(self, model):
        # ~40% of max with 30 readers, ~1/3 with 18.
        out = model.mixed(write_threads=4, read_threads=30)
        assert 0.25 < out.write_retention < 0.5

    def test_recommended_combo_balances_at_a_third(self, model):
        # 4-6 writers + 16-18 readers: both sides near 1/3 of their max.
        out = model.mixed(write_threads=6, read_threads=18)
        assert 0.25 < out.write_retention < 0.45
        assert 0.25 < out.read_retention < 0.45

    def test_combined_never_exceeds_uncontended_read_max(self, model):
        # §5.1: "the combined read and write bandwidth does not exceed
        # the non-contended maximum read bandwidth".
        read_max = model.sequential_read(18, 4096)
        for w in (1, 4, 6):
            for r in (1, 8, 18, 30):
                out = model.mixed(write_threads=w, read_threads=r)
                assert out.total_gbps <= read_max * 1.01

    def test_more_writers_monotonically_hurt_reads(self, model):
        reads = [
            model.mixed(write_threads=w, read_threads=18).read_gbps
            for w in (1, 2, 4, 6)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(reads, reads[1:]))

    def test_more_readers_monotonically_hurt_writes(self, model):
        writes = [
            model.mixed(write_threads=4, read_threads=r).write_gbps
            for r in (1, 8, 18)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(writes, writes[1:]))

    def test_dram_interference_is_milder(self, model):
        pmem = model.mixed(write_threads=4, read_threads=18)
        dram = model.mixed(write_threads=4, read_threads=18, media=MediaKind.DRAM)
        assert dram.read_retention > pmem.read_retention
        assert dram.write_retention > pmem.write_retention


class TestInterferenceLaw:
    def test_factors_in_unit_interval(self, cal):
        rf, wf = interference_factors(cal, MediaKind.PMEM, 20.0, 10.0)
        assert 0 < rf <= 1
        assert 0 < wf <= 1

    def test_zero_demand_means_no_interference(self, cal):
        rf, wf = interference_factors(cal, MediaKind.PMEM, 0.0, 0.0)
        assert rf == 1.0
        assert wf == 1.0

    def test_negative_rejected(self, cal):
        with pytest.raises(WorkloadError):
            interference_factors(cal, MediaKind.PMEM, -1.0, 0.0)

    def test_ssd_not_modeled(self, cal):
        with pytest.raises(WorkloadError):
            interference_factors(cal, MediaKind.SSD, 1.0, 1.0)

    def test_resolve_enforces_capacity(self, cal):
        out = resolve(cal, MediaKind.PMEM, 40.0, 13.2)
        utilization = (
            out.read_gbps / cal.pmem.seq_read_max
            + out.write_gbps / cal.pmem.seq_write_max
        )
        assert utilization <= 1.0 + 1e-9

    def test_resolve_retention_properties(self, cal):
        out = resolve(cal, MediaKind.PMEM, 30.0, 3.0)
        assert out.read_gbps <= out.read_alone_gbps
        assert out.write_gbps <= out.write_alone_gbps
        assert out.total_gbps == pytest.approx(out.read_gbps + out.write_gbps)
