"""Tests for the UPI link and coherence-directory model."""

import pytest

from repro.errors import SimulationError, WorkloadError
from repro.memsim.calibration import paper_calibration
from repro.memsim.upi import CoherenceDirectory, UpiModel


@pytest.fixture(scope="module")
def cal():
    return paper_calibration()


@pytest.fixture(scope="module")
def upi(cal):
    return UpiModel(cal.upi, cal.pmem)


class TestDirectory:
    def test_local_access_is_always_warm(self):
        directory = CoherenceDirectory()
        assert directory.is_warm(0, 0)

    def test_far_access_starts_cold(self):
        directory = CoherenceDirectory()
        assert not directory.is_warm(0, 1)

    def test_touch_warms_the_pair(self):
        directory = CoherenceDirectory()
        directory.touch(0, 1)
        assert directory.is_warm(0, 1)

    def test_warmth_is_directional(self):
        directory = CoherenceDirectory()
        directory.touch(0, 1)
        assert not directory.is_warm(1, 0)

    def test_single_thread_priming_counts(self):
        # §3.4: a single-threaded far read eliminates the multi-threaded
        # warm-up penalty — any touch warms the pair.
        directory = CoherenceDirectory()
        directory.touch(0, 1)
        assert directory.is_warm(0, 1)

    def test_invalidate_by_home_socket(self):
        directory = CoherenceDirectory()
        directory.touch(0, 1)
        directory.touch(1, 0)
        directory.invalidate(1)
        assert not directory.is_warm(0, 1)
        assert directory.is_warm(1, 0)


class TestColdFarCap:
    def test_peaks_at_four_threads(self, upi, cal):
        caps = {t: upi.cold_far_read_cap(t) for t in (1, 2, 4, 8, 18, 36)}
        best = max(caps, key=caps.get)
        assert best == cal.pmem.cold_far_read_best_threads

    def test_peak_value(self, upi, cal):
        assert upi.cold_far_read_cap(4) == pytest.approx(cal.pmem.cold_far_read_max)

    def test_decays_beyond_optimum(self, upi):
        assert upi.cold_far_read_cap(18) < upi.cold_far_read_cap(4)
        assert upi.cold_far_read_cap(36) < upi.cold_far_read_cap(18)

    def test_invalid_threads(self, upi):
        with pytest.raises(WorkloadError):
            upi.cold_far_read_cap(0)


class TestWarmFarCap:
    def test_pmem_warm_far_around_33(self, upi, cal):
        cap = upi.warm_far_read_cap(cal.pmem.warm_far_read_max)
        assert cap == pytest.approx(33.0, abs=0.5)

    def test_binding_constraint_is_minimum(self, upi):
        assert upi.warm_far_read_cap(10.0) == 10.0

    def test_invalid_media_cap(self, upi):
        with pytest.raises(SimulationError):
            upi.warm_far_read_cap(0.0)


class TestUtilization:
    def test_zero_payload(self, upi):
        assert upi.utilization(0.0) == 0.0

    def test_metadata_inflates_utilization(self, upi, cal):
        payload = 20.0
        utilization = upi.utilization(payload)
        assert utilization > payload / cal.upi.raw_per_direction

    def test_capped_at_one(self, upi):
        assert upi.utilization(1000.0) == 1.0

    def test_negative_rejected(self, upi):
        with pytest.raises(SimulationError):
            upi.utilization(-1.0)
