"""Tests for the discrete-event engine."""

import pytest

from repro.errors import WorkloadError
from repro.memsim.engine import DiscreteEventEngine, EngineConfig, build_traces, simulate
from repro.memsim.spec import Layout, Op, Pattern
from repro.units import MIB


class TestTraces:
    def test_grouped_forms_global_sequential_stream(self):
        traces = build_traces(
            threads=4, access_size=256, total_bytes=64 * 1024,
            layout=Layout.GROUPED, pattern=Pattern.SEQUENTIAL,
        )
        # Thread 0 reads bytes 0-255, thread 1 from 256 (§3.1 definition).
        firsts = [next(iter(t))[0] for t in traces]
        assert firsts == [0, 256, 512, 768]
        # Thread 0's second op starts after all other threads' first ops.
        ops0 = list(traces[0])
        assert ops0[1][0] == 4 * 256

    def test_individual_gives_disjoint_slices(self):
        traces = build_traces(
            threads=2, access_size=4096, total_bytes=1 * MIB,
            layout=Layout.INDIVIDUAL, pattern=Pattern.SEQUENTIAL,
        )
        ops0 = list(traces[0])
        ops1 = list(traces[1])
        end0 = ops0[-1][0] + 4096
        assert ops1[0][0] >= end0

    def test_random_is_reproducible(self):
        kwargs = dict(
            threads=2, access_size=256, total_bytes=64 * 1024,
            layout=Layout.INDIVIDUAL, pattern=Pattern.RANDOM,
            region_bytes=1 * MIB, seed=42,
        )
        a = [list(t) for t in build_traces(**kwargs)]
        b = [list(t) for t in build_traces(**kwargs)]
        assert a == b

    def test_random_stays_in_region(self):
        traces = build_traces(
            threads=1, access_size=256, total_bytes=64 * 1024,
            layout=Layout.INDIVIDUAL, pattern=Pattern.RANDOM,
            region_bytes=1 * MIB,
        )
        for address, size in traces[0]:
            assert 0 <= address
            assert address + size <= 1 * MIB

    def test_volume_too_small_rejected(self):
        with pytest.raises(WorkloadError):
            build_traces(
                threads=8, access_size=4096, total_bytes=4096,
                layout=Layout.INDIVIDUAL, pattern=Pattern.SEQUENTIAL,
            )


class TestEngineBasics:
    def test_bandwidth_positive_and_bounded(self):
        result = simulate(
            EngineConfig(op=Op.READ, threads=4, access_size=4096, total_bytes=4 * MIB)
        )
        assert 0 < result.gbps <= 41.0

    def test_all_bytes_accounted(self):
        config = EngineConfig(
            op=Op.READ, threads=4, access_size=4096, total_bytes=4 * MIB
        )
        result = simulate(config)
        # Volume is rounded down to whole ops per thread.
        ops = (4 * MIB // 4096 // 4) * 4
        assert result.bytes_moved == ops * 4096
        assert sum(result.per_dimm_bytes) == result.bytes_moved

    def test_individual_access_balances_dimms(self):
        result = simulate(
            EngineConfig(op=Op.READ, threads=6, access_size=4096, total_bytes=8 * MIB)
        )
        assert result.dimm_imbalance < 1.1

    def test_deterministic_given_seed(self):
        config = EngineConfig(
            op=Op.WRITE, threads=8, access_size=4096, total_bytes=4 * MIB, seed=3
        )
        a = simulate(config)
        b = simulate(config)
        assert a.seconds == b.seconds

    def test_config_validation(self):
        with pytest.raises(WorkloadError):
            EngineConfig(op=Op.READ, threads=0, access_size=4096)
        with pytest.raises(WorkloadError):
            EngineConfig(op=Op.READ, threads=1, access_size=32)


class TestEmergentReadBehaviour:
    def test_read_thread_scaling(self):
        b1 = simulate(
            EngineConfig(op=Op.READ, threads=1, access_size=4096, total_bytes=4 * MIB)
        ).gbps
        b8 = simulate(
            EngineConfig(op=Op.READ, threads=8, access_size=4096, total_bytes=8 * MIB)
        ).gbps
        b18 = simulate(
            EngineConfig(op=Op.READ, threads=18, access_size=4096, total_bytes=16 * MIB)
        ).gbps
        assert b1 < b8 < b18
        assert b18 == pytest.approx(40.0, rel=0.05)

    def test_grouped_small_reads_amplify_and_collapse(self):
        # The §3.1 mechanism: many threads sharing 256 B lines re-fetch
        # them from the media.
        result = simulate(
            EngineConfig(
                op=Op.READ, threads=36, access_size=64,
                layout=Layout.GROUPED, total_bytes=2 * MIB,
            )
        )
        assert result.amplification > 1.5
        assert result.gbps < 20.0

    def test_grouped_4k_reaches_peak(self):
        result = simulate(
            EngineConfig(
                op=Op.READ, threads=36, access_size=4096,
                layout=Layout.GROUPED, total_bytes=16 * MIB,
            )
        )
        assert result.gbps == pytest.approx(40.0, rel=0.05)
        assert result.amplification == pytest.approx(1.0)

    def test_individual_small_reads_do_not_amplify(self):
        result = simulate(
            EngineConfig(op=Op.READ, threads=18, access_size=64, total_bytes=2 * MIB)
        )
        assert result.amplification < 1.1
        assert result.gbps > 30.0

    def test_random_sub_line_reads_amplify_4x(self):
        result = simulate(
            EngineConfig(
                op=Op.READ, threads=18, access_size=64, pattern=Pattern.RANDOM,
                total_bytes=1 * MIB, region_bytes=256 * MIB,
            )
        )
        assert result.amplification == pytest.approx(4.0, rel=0.05)


class TestEmergentWriteBehaviour:
    def test_write_peak_at_4_to_6_threads(self):
        curve = {
            t: simulate(
                EngineConfig(op=Op.WRITE, threads=t, access_size=4096, total_bytes=8 * MIB)
            ).gbps
            for t in (1, 2, 4, 6, 8, 18)
        }
        best = max(curve, key=curve.get)
        assert best in (4, 6)
        assert curve[best] == pytest.approx(13.0, rel=0.08)

    def test_write_boomerang_emerges(self):
        # 18 threads at 4 KB collapse; 4 threads do not.
        b4 = simulate(
            EngineConfig(op=Op.WRITE, threads=4, access_size=4096, total_bytes=8 * MIB)
        )
        b18 = simulate(
            EngineConfig(op=Op.WRITE, threads=18, access_size=4096, total_bytes=8 * MIB)
        )
        assert b18.gbps < 0.6 * b4.gbps
        assert b18.amplification > 1.5
        assert b4.amplification == pytest.approx(1.0)

    def test_grouped_small_writes_amplify(self):
        result = simulate(
            EngineConfig(
                op=Op.WRITE, threads=36, access_size=64,
                layout=Layout.GROUPED, total_bytes=2 * MIB,
            )
        )
        assert result.amplification > 2.0

    def test_write_combining_ablation(self):
        on = DiscreteEventEngine()
        off = DiscreteEventEngine(write_combining_enabled=False)
        config = EngineConfig(
            op=Op.WRITE, threads=4, access_size=4096, total_bytes=4 * MIB
        )
        assert off.run(config).gbps < 0.5 * on.run(config).gbps


class TestEngineVsAnalytic:
    """The two fidelity levels must agree on the calibrated anchors."""

    TOLERANCE = 0.45  # relative band; the engine is a coarse replay

    @pytest.mark.parametrize(
        "op,threads,size,layout",
        [
            (Op.READ, 1, 4096, Layout.INDIVIDUAL),
            (Op.READ, 8, 4096, Layout.INDIVIDUAL),
            (Op.READ, 18, 4096, Layout.INDIVIDUAL),
            (Op.READ, 36, 4096, Layout.GROUPED),
            (Op.READ, 36, 64, Layout.GROUPED),
            (Op.WRITE, 1, 4096, Layout.INDIVIDUAL),
            (Op.WRITE, 4, 4096, Layout.INDIVIDUAL),
            (Op.WRITE, 18, 4096, Layout.INDIVIDUAL),
            (Op.WRITE, 36, 64, Layout.INDIVIDUAL),
        ],
    )
    def test_agreement(self, op, threads, size, layout):
        from repro.memsim import BandwidthModel

        model = BandwidthModel()
        if op is Op.READ:
            analytic = model.sequential_read(threads, size, layout=layout)
        else:
            analytic = model.sequential_write(threads, size, layout=layout)
        engine = simulate(
            EngineConfig(
                op=op, threads=threads, access_size=size, layout=layout,
                total_bytes=max(4 * MIB, threads * size * 64),
            )
        ).gbps
        assert engine == pytest.approx(analytic, rel=self.TOLERANCE)
