"""Sequential-read bandwidth tests (paper §3, Figures 3-5).

These tests encode the *shapes* of the paper's read figures: peak
locations, orderings, and ratio bands. Absolute values are checked only
against the calibration anchors the model was fitted to.
"""

import pytest

from repro.memsim import BandwidthModel, DaxMode, Layout, MediaKind, PinningPolicy


@pytest.fixture
def model():
    return BandwidthModel()


class TestFig3AccessSize:
    def test_grouped_peaks_at_4k(self, model):
        sizes = [64, 256, 512, 1024, 2048, 4096, 16384, 65536]
        curve = {
            s: model.sequential_read(36, s, layout=Layout.GROUPED) for s in sizes
        }
        assert max(curve, key=curve.get) == 4096

    def test_grouped_peak_near_40(self, model):
        peak = model.sequential_read(36, 4096, layout=Layout.GROUPED)
        assert peak == pytest.approx(40.0, rel=0.05)

    def test_grouped_64b_collapses(self, model):
        # Fig. 3a: grouped 64 B at 36 threads lands around 12 GB/s
        # because the window keeps barely two DIMMs busy.
        small = model.sequential_read(36, 64, layout=Layout.GROUPED)
        assert 8.0 < small < 15.0

    def test_prefetcher_dip_at_1k_2k(self, model):
        # The 1-2 KB dip of Fig. 3a.
        b512 = model.sequential_read(36, 512, layout=Layout.GROUPED)
        b1k = model.sequential_read(36, 1024, layout=Layout.GROUPED)
        b2k = model.sequential_read(36, 2048, layout=Layout.GROUPED)
        b4k = model.sequential_read(36, 4096, layout=Layout.GROUPED)
        assert b1k < b512
        assert b2k < b4k

    def test_disabling_prefetcher_removes_dip(self):
        model = BandwidthModel(prefetcher_enabled=False)
        b1k = model.sequential_read(36, 1024, layout=Layout.GROUPED)
        b2k = model.sequential_read(36, 2048, layout=Layout.GROUPED)
        b4k = model.sequential_read(36, 4096, layout=Layout.GROUPED)
        assert b1k >= 0.9 * b4k
        assert b2k >= 0.9 * b4k

    def test_individual_access_flat_in_size(self, model):
        # Fig. 3b: individual access bandwidth is nearly size-independent
        # at high thread counts ("the maximum individual spans only 3 GB").
        values = [model.sequential_read(18, s) for s in (64, 256, 1024, 4096, 65536)]
        assert max(values) - min(values) < 4.0

    def test_individual_small_reads_stay_fast(self, model):
        # Sub-line sequential reads are served from the 256 B buffer: 30+
        # GB/s even at 64 B (§3.1).
        assert model.sequential_read(18, 64) > 30.0

    def test_bandwidth_constant_beyond_64k(self, model):
        b64k = model.sequential_read(36, 65536, layout=Layout.GROUPED)
        b1m = model.sequential_read(36, 1 << 20, layout=Layout.GROUPED)
        assert b64k == pytest.approx(b1m, rel=0.01)


class TestFig3ThreadCount:
    def test_peak_at_16_to_18_threads(self, model):
        curve = {t: model.sequential_read(t, 4096) for t in (1, 4, 8, 16, 18, 24, 36)}
        peak_threads = max(curve, key=curve.get)
        assert peak_threads in (16, 18, 36)
        assert curve[18] == pytest.approx(40.0, rel=0.05)

    def test_8_threads_within_15_percent_of_peak(self, model):
        # §3.2: "as few as 8 threads achieves nearly as much bandwidth
        # as 36 threads (~15% difference)".
        b8 = model.sequential_read(8, 4096)
        b36 = model.sequential_read(36, 4096)
        assert b8 >= 0.82 * b36

    def test_hyperthreads_do_not_improve_reads(self, model):
        # §3.2: "adding hyperthreads does not improve the bandwidth";
        # 24 threads even dip below the 18-thread peak (Fig. 4).
        b18 = model.sequential_read(18, 4096)
        b24 = model.sequential_read(24, 4096)
        assert b24 <= b18

    def test_monotone_up_to_core_count(self, model):
        values = [model.sequential_read(t, 4096) for t in (1, 2, 4, 8, 12, 16, 18)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_disabled_prefetcher_restores_36_thread_peak(self):
        # §3.2: with the prefetcher disabled, 36 threads also reach ~40.
        model = BandwidthModel(prefetcher_enabled=False)
        assert model.sequential_read(36, 4096) == pytest.approx(40.0, rel=0.05)


class TestFig4Pinning:
    def test_pinning_order(self, model):
        # Cores >= NUMA >> None, at every thread count.
        for threads in (4, 8, 18, 24, 36):
            cores = model.sequential_read(threads, 4096, pinning=PinningPolicy.CORES)
            numa = model.sequential_read(
                threads, 4096, pinning=PinningPolicy.NUMA_REGION
            )
            none = model.sequential_read(threads, 4096, pinning=PinningPolicy.NONE)
            assert cores >= numa >= none

    def test_unpinned_peak_near_9(self, model):
        peak = max(
            model.sequential_read(t, 4096, pinning=PinningPolicy.NONE)
            for t in (1, 4, 8, 18, 24, 36)
        )
        assert peak == pytest.approx(9.0, rel=0.15)

    def test_unpinned_is_4x_worse(self, model):
        # §4.3: "no pinning is 4x worse for reading".
        pinned = model.sequential_read(18, 4096)
        unpinned = model.sequential_read(18, 4096, pinning=PinningPolicy.NONE)
        assert pinned / unpinned > 3.5

    def test_numa_equals_cores_below_core_count(self, model):
        for threads in (1, 8, 18):
            cores = model.sequential_read(threads, 4096)
            numa = model.sequential_read(
                threads, 4096, pinning=PinningPolicy.NUMA_REGION
            )
            assert numa == pytest.approx(cores)


class TestFig5NumaEffects:
    def test_near_peak(self, model):
        assert model.sequential_read(18, 4096) == pytest.approx(40.0, rel=0.05)

    def test_cold_far_is_5x_worse(self, model):
        model.reset_directory()
        cold = model.sequential_read(18, 4096, far=True, warm=False)
        near = model.sequential_read(18, 4096)
        assert near / cold >= 4.5

    def test_cold_far_optimum_shifts_to_4_threads(self, model):
        model.reset_directory()
        curve = {}
        for t in (1, 4, 8, 18, 36):
            model.reset_directory()
            curve[t] = model.sequential_read(t, 4096, far=True, warm=False)
        assert max(curve, key=curve.get) == 4

    def test_warm_far_reaches_33(self, model):
        warm = model.sequential_read(18, 4096, far=True, warm=True)
        assert warm == pytest.approx(33.0, rel=0.05)

    def test_second_run_is_warm(self, model):
        # The directory remembers the first traversal: re-evaluating the
        # same far stream jumps from ~8 to ~33 GB/s (Fig. 5 "2nd Far").
        model.reset_directory()
        first = model.sequential_read(18, 4096, far=True, warm=False)
        second = model.sequential_read(18, 4096, far=True, warm=False)
        assert second > 3 * first


class TestDaxModes:
    def test_fsdax_is_5_to_10_percent_slower(self, model):
        devdax = model.sequential_read(18, 4096)
        fsdax = model.sequential_read(18, 4096, dax_mode=DaxMode.FSDAX)
        ratio = devdax / fsdax
        assert 1.04 < ratio < 1.12

    def test_prefaulted_fsdax_matches_devdax(self, model):
        # §2.3: identical performance once all pages were pre-faulted.
        devdax = model.sequential_read(18, 4096)
        fsdax = model.sequential_read(
            18, 4096, dax_mode=DaxMode.FSDAX, prefaulted=True
        )
        assert fsdax == pytest.approx(devdax)

    def test_dram_ignores_dax_mode(self, model):
        a = model.sequential_read(18, 4096, media=MediaKind.DRAM)
        b = model.sequential_read(
            18, 4096, media=MediaKind.DRAM, dax_mode=DaxMode.FSDAX
        )
        assert a == b


class TestDramContrast:
    def test_dram_read_peak_near_100(self, model):
        assert model.sequential_read(18, 4096, media=MediaKind.DRAM) == pytest.approx(
            100.0, rel=0.05
        )

    def test_dram_prefetch_dip_exists_too(self, model):
        # §3.1: the 1-2 KB anomaly "is not a PMEM-specific anomaly".
        b1k = model.sequential_read(36, 1024, media=MediaKind.DRAM, layout=Layout.GROUPED)
        b4k = model.sequential_read(36, 4096, media=MediaKind.DRAM, layout=Layout.GROUPED)
        assert b1k < 0.8 * b4k

    def test_pmem_reads_about_a_third_of_dram(self, model):
        pmem = model.sequential_read(18, 4096)
        dram = model.sequential_read(18, 4096, media=MediaKind.DRAM)
        assert 0.3 < pmem / dram < 0.5
