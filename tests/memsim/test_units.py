"""Tests for the unit helpers."""

import pytest

from repro.units import (
    GB,
    GIB,
    KIB,
    MIB,
    fmt_bytes,
    gbps,
    gib,
    kib,
    mib,
    seconds_for,
)


class TestConstants:
    def test_binary_multiples(self):
        assert KIB == 1024
        assert MIB == 1024 * 1024
        assert GIB == 1024**3

    def test_decimal_gigabyte(self):
        assert GB == 10**9

    def test_gib_mib_kib_helpers(self):
        assert gib(2) == 2 * GIB
        assert mib(1.5) == int(1.5 * MIB)
        assert kib(4) == 4096


class TestBandwidthConversions:
    def test_gbps_round_trip(self):
        # 40 GB in one second is 40 GB/s.
        assert gbps(40 * GB, 1.0) == pytest.approx(40.0)

    def test_seconds_for(self):
        assert seconds_for(40 * GB, 40.0) == pytest.approx(1.0)

    def test_seconds_for_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            seconds_for(1, 0.0)

    def test_seconds_for_rejects_negative_bandwidth(self):
        with pytest.raises(ValueError):
            seconds_for(1, -1.0)

    def test_gbps_zero_duration_raises(self):
        # Zero-length measurement intervals are a caller bug, not infinity.
        with pytest.raises(ZeroDivisionError):
            gbps(1024, 0.0)

    def test_gbps_handles_zero_bytes(self):
        assert gbps(0, 1.0) == 0.0


class TestFormatting:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (64, "64B"),
            (4096, "4.0KiB"),
            (MIB, "1.0MiB"),
            (70 * GIB, "70.0GiB"),
            (2 * 1024**4, "2.0TiB"),
        ],
    )
    def test_fmt_bytes(self, n, expected):
        assert fmt_bytes(n) == expected

    @pytest.mark.parametrize(
        "n,expected",
        [
            # Exact boundaries: 1023 stays in bytes, 1024 promotes to KiB,
            # and one byte short of a MiB still renders as KiB.
            (0, "0B"),
            (1023, "1023B"),
            (1024, "1.0KiB"),
            (MIB - 1, "1024.0KiB"),
            (MIB, "1.0MiB"),
            (GIB - 1, "1024.0MiB"),
            # Beyond TiB there is no larger suffix; the count just grows.
            (5000 * 1024**4, "5000.0TiB"),
        ],
    )
    def test_fmt_bytes_boundaries(self, n, expected):
        assert fmt_bytes(n) == expected
