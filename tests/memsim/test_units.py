"""Tests for the unit helpers."""

import pytest

from repro.units import (
    GB,
    GIB,
    KIB,
    MIB,
    fmt_bytes,
    gbps,
    gib,
    kib,
    mib,
    seconds_for,
)


class TestConstants:
    def test_binary_multiples(self):
        assert KIB == 1024
        assert MIB == 1024 * 1024
        assert GIB == 1024**3

    def test_decimal_gigabyte(self):
        assert GB == 10**9

    def test_gib_mib_kib_helpers(self):
        assert gib(2) == 2 * GIB
        assert mib(1.5) == int(1.5 * MIB)
        assert kib(4) == 4096


class TestBandwidthConversions:
    def test_gbps_round_trip(self):
        # 40 GB in one second is 40 GB/s.
        assert gbps(40 * GB, 1.0) == pytest.approx(40.0)

    def test_seconds_for(self):
        assert seconds_for(40 * GB, 40.0) == pytest.approx(1.0)

    def test_seconds_for_rejects_zero_bandwidth(self):
        with pytest.raises(ValueError):
            seconds_for(1, 0.0)

    def test_seconds_for_rejects_negative_bandwidth(self):
        with pytest.raises(ValueError):
            seconds_for(1, -1.0)


class TestFormatting:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (64, "64B"),
            (4096, "4.0KiB"),
            (MIB, "1.0MiB"),
            (70 * GIB, "70.0GiB"),
            (2 * 1024**4, "2.0TiB"),
        ],
    )
    def test_fmt_bytes(self, n, expected):
        assert fmt_bytes(n) == expected
