"""MachineConfig and DirectoryState: the pure core's value types."""

import dataclasses

import pytest

from repro.errors import CalibrationError
from repro.memsim import DirectoryState, MachineConfig, paper_config
from repro.memsim.calibration import paper_calibration
from repro.memsim.topology import build_topology, paper_server


class TestMachineConfig:
    def test_equal_configs_hash_equal(self):
        a, b = MachineConfig(), MachineConfig()
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_usable_as_dict_key(self):
        cache = {MachineConfig(): 1.0}
        assert cache[MachineConfig()] == 1.0

    def test_toggles_distinguish_configs(self):
        assert MachineConfig() != MachineConfig(prefetcher_enabled=False)
        assert MachineConfig() != MachineConfig(write_combining_enabled=False)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            MachineConfig().prefetcher_enabled = False

    def test_validates_calibration_on_construction(self):
        cal = paper_calibration()
        bad = dataclasses.replace(
            cal, pmem=dataclasses.replace(cal.pmem, seq_read_max=-1.0)
        )
        with pytest.raises(CalibrationError):
            MachineConfig(calibration=bad)

    def test_paper_config_is_shared(self):
        assert paper_config() is paper_config()
        assert paper_config() == MachineConfig()


class TestDirectoryState:
    def test_cold_is_empty_and_shared(self):
        assert DirectoryState.cold().warm_pairs == frozenset()
        assert DirectoryState.cold() is DirectoryState.cold()

    def test_warm_covers_all_distinct_pairs(self):
        warm = DirectoryState.warm(paper_server())
        assert warm.warm_pairs == {(0, 1), (1, 0)}
        assert (
            DirectoryState.warm(build_topology(sockets=1)).warm_pairs == frozenset()
        )

    def test_same_socket_always_warm(self):
        cold = DirectoryState.cold()
        assert cold.is_warm(0, 0)
        assert not cold.is_warm(0, 1)

    def test_touch_returns_new_value(self):
        cold = DirectoryState.cold()
        touched = cold.touch(0, 1)
        assert touched is not cold
        assert touched.is_warm(0, 1)
        assert not cold.is_warm(0, 1)  # original untouched

    def test_touch_is_idempotent(self):
        touched = DirectoryState.cold().touch(0, 1)
        assert touched.touch(0, 1) is touched
        assert DirectoryState.cold().touch(0, 0) is DirectoryState.cold()

    def test_invalidate_drops_home(self):
        warm = DirectoryState.warm(paper_server())
        assert warm.invalidate(1).warm_pairs == {(1, 0)}

    def test_restrict_intersects(self):
        warm = DirectoryState.warm(paper_server())
        assert warm.restrict(frozenset({(0, 1)})).warm_pairs == {(0, 1)}
        assert warm.restrict(frozenset()).warm_pairs == frozenset()

    def test_hashable_value_semantics(self):
        assert DirectoryState.cold().touch(0, 1) == DirectoryState(
            frozenset({(0, 1)})
        )
        assert len({DirectoryState.cold(), DirectoryState(frozenset())}) == 1
