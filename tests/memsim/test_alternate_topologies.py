"""Robustness: the model works on non-paper topologies too.

The library claims to model a *family* of servers, not one machine;
these tests exercise single-socket and denser configurations.
"""

import pytest

from repro.errors import TopologyError
from repro.memsim import BandwidthModel, MediaKind, Op, StreamSpec, build_topology
from repro.memsim.scheduler import PinningPolicy
from repro.units import GIB


@pytest.fixture(scope="module")
def single_socket():
    return BandwidthModel(build_topology(sockets=1))


@pytest.fixture(scope="module")
def big_socket():
    # A hypothetical 28-core part with the same memory complement.
    return BandwidthModel(build_topology(physical_cores_per_socket=28))


class TestSingleSocket:
    def test_near_access_works(self, single_socket):
        assert single_socket.sequential_read(18, 4096) == pytest.approx(40.0, rel=0.05)
        assert single_socket.sequential_write(4, 4096) == pytest.approx(12.6, rel=0.05)

    def test_far_access_rejected(self, single_socket):
        with pytest.raises(TopologyError):
            single_socket.evaluate(
                [
                    StreamSpec(
                        op=Op.READ, threads=18,
                        issuing_socket=0, target_socket=1,
                    )
                ]
            )

    def test_mixed_works(self, single_socket):
        outcome = single_socket.mixed(write_threads=4, read_threads=18)
        assert outcome.read_gbps > 0
        assert outcome.write_gbps > 0

    def test_warm_directory_is_noop(self, single_socket):
        single_socket.warm_directory()  # must not raise


class TestBiggerSocket:
    def test_more_cores_saturate_earlier_relative(self, big_socket):
        # The device cap is unchanged; extra cores only add issue width.
        assert big_socket.sequential_read(28, 4096) == pytest.approx(40.0, rel=0.05)

    def test_hyperthread_penalty_tracks_core_count(self, big_socket):
        # 42 threads on 28 cores is the imbalanced case now.
        b28 = big_socket.sequential_read(28, 4096)
        b42 = big_socket.sequential_read(42, 4096)
        assert b42 <= b28

    def test_pinning_behaviour_preserved(self, big_socket):
        pinned = big_socket.sequential_read(28, 4096)
        unpinned = big_socket.sequential_read(
            28, 4096, pinning=PinningPolicy.NONE
        )
        assert pinned > 3 * unpinned


class TestCustomCapacity:
    def test_larger_dimms_change_capacity_not_bandwidth(self):
        big = BandwidthModel(build_topology(pmem_dimm_capacity=512 * GIB))
        small = BandwidthModel(build_topology(pmem_dimm_capacity=128 * GIB))
        assert big.topology.capacity(MediaKind.PMEM) == 4 * small.topology.capacity(
            MediaKind.PMEM
        )
        assert big.sequential_read(18, 4096) == small.sequential_read(18, 4096)
