"""Tests for stream specifications."""

import pytest

from repro.errors import WorkloadError
from repro.memsim import Layout, MediaKind, Op, StreamSpec, read_stream, write_stream
from repro.memsim.scheduler import PinningPolicy


class TestValidation:
    def test_zero_threads_rejected(self):
        with pytest.raises(WorkloadError):
            StreamSpec(op=Op.READ, threads=0)

    def test_sub_cacheline_access_rejected(self):
        with pytest.raises(WorkloadError):
            StreamSpec(op=Op.READ, threads=1, access_size=32)

    def test_ssd_media_rejected(self):
        with pytest.raises(WorkloadError):
            StreamSpec(op=Op.READ, threads=1, media=MediaKind.SSD)

    def test_negative_socket_rejected(self):
        with pytest.raises(WorkloadError):
            StreamSpec(op=Op.READ, threads=1, issuing_socket=-1)

    def test_zero_region_rejected(self):
        with pytest.raises(WorkloadError):
            StreamSpec(op=Op.READ, threads=1, region_bytes=0)


class TestProperties:
    def test_far_detection(self):
        near = StreamSpec(op=Op.READ, threads=1)
        far = StreamSpec(op=Op.READ, threads=1, target_socket=1)
        assert not near.far
        assert far.far

    def test_is_read(self):
        assert StreamSpec(op=Op.READ, threads=1).is_read
        assert not StreamSpec(op=Op.WRITE, threads=1).is_read

    def test_with_replaces_fields(self):
        spec = StreamSpec(op=Op.READ, threads=4)
        other = spec.with_(threads=8, layout=Layout.GROUPED)
        assert other.threads == 8
        assert other.layout is Layout.GROUPED
        assert spec.threads == 4  # original untouched

    def test_defaults_match_paper_conventions(self):
        spec = StreamSpec(op=Op.READ, threads=1)
        assert spec.access_size == 4096
        assert spec.layout is Layout.INDIVIDUAL
        assert spec.pinning is PinningPolicy.CORES
        assert spec.media is MediaKind.PMEM


class TestShorthands:
    def test_read_stream(self):
        spec = read_stream(8, access_size=256)
        assert spec.op is Op.READ
        assert spec.threads == 8
        assert spec.access_size == 256

    def test_write_stream(self):
        spec = write_stream(4)
        assert spec.op is Op.WRITE
