"""Batched analytic kernels are bit-identical to per-point ``evaluate``.

The vector backend's whole value proposition rests on exact equality:
``evaluate_grid`` may share setup across points and compute in NumPy
arrays, but every observable of every result — bandwidth floats, stream
notes, performance counters, the directory state — must equal the scalar
evaluator's bit for bit, so cached entries and golden files are
interchangeable between backends. These property tests draw seeded
random grids spanning every point family the kernel prices — plain
sequential, random-pattern, cross-socket, unpinned, fsdax, and
multi-stream — and compare everything.
"""

import dataclasses
import random

from repro.memsim import (
    DaxMode,
    DirectoryState,
    Layout,
    MediaKind,
    Op,
    Pattern,
    PinningPolicy,
    StreamSpec,
    eval_context,
    evaluate,
    paper_config,
)
from repro.memsim.kernels import evaluate_batch, evaluate_grid, vector_eligible
from repro.obs import CountersRecorder

THREADS = (1, 2, 4, 8, 18, 24, 36)
SIZES = (64, 128, 256, 1024, 4096, 16384)


def sample_point(rng: random.Random) -> tuple[StreamSpec, ...]:
    """One random sweep point; ~1 in 3 lands off the plain-sequential path."""
    spec = StreamSpec(
        op=rng.choice((Op.READ, Op.WRITE)),
        threads=rng.choice(THREADS),
        access_size=rng.choice(SIZES),
        media=rng.choice((MediaKind.PMEM, MediaKind.PMEM, MediaKind.DRAM)),
        layout=rng.choice((Layout.INDIVIDUAL, Layout.GROUPED)),
    )
    roll = rng.random()
    if roll < 0.08:
        spec = spec.with_(pattern=Pattern.RANDOM)
    elif roll < 0.16:
        spec = spec.with_(issuing_socket=0, target_socket=1)
    elif roll < 0.22:
        spec = spec.with_(pinning=PinningPolicy.NONE)
    elif roll < 0.28 and spec.media is MediaKind.PMEM:
        spec = spec.with_(dax_mode=DaxMode.FSDAX)
    elif roll < 0.34:
        other = StreamSpec(
            op=Op.WRITE if spec.op is Op.READ else Op.READ,
            threads=rng.choice(THREADS),
            access_size=rng.choice(SIZES),
        )
        return (spec, other)
    return (spec,)


def sample_grid(seed: int, n: int) -> list[tuple[StreamSpec, ...]]:
    rng = random.Random(seed)
    return [sample_point(rng) for _ in range(n)]


def assert_identical(got, want):
    """Full bit-identity: floats by hex, counters, notes, directory."""
    assert got == want
    assert len(got.streams) == len(want.streams)
    for g, w in zip(got.streams, want.streams):
        assert g.gbps.hex() == w.gbps.hex()
        assert g.solo_gbps.hex() == w.solo_gbps.hex()
        assert g.notes == w.notes
    got_counters, want_counters = got.counters, want.counters
    for field in dataclasses.fields(got_counters):
        gv = getattr(got_counters, field.name)
        wv = getattr(want_counters, field.name)
        if isinstance(gv, float):
            assert gv.hex() == wv.hex(), field.name
        else:
            assert gv == wv, field.name
    assert got.directory_after == want.directory_after


class TestGridBitIdentity:
    def test_random_grid_matches_scalar_point_by_point(self):
        config = paper_config()
        context = eval_context(config)
        points = sample_grid(seed=20260807, n=96)
        state = DirectoryState.cold()
        batched = evaluate_grid(context, points, state)
        assert len(batched) == len(points)
        for streams, got in zip(points, batched):
            want = evaluate(config, streams, state, context=context)
            assert_identical(got, want)

    def test_grid_spans_every_family_and_all_are_eligible(self):
        # The property above is only meaningful if the sample actually
        # exercises every point family — and every one of them must now
        # go through the batched kernel, not the scalar fallback.
        context = eval_context(paper_config())
        points = sample_grid(seed=20260807, n=96)
        flat = [s for p in points for s in p]
        assert any(s.pattern is Pattern.RANDOM for s in flat)
        assert any(s.far for s in flat)
        assert any(s.pinning is PinningPolicy.NONE for s in flat)
        assert any(s.dax_mode is DaxMode.FSDAX for s in flat)
        assert any(len(p) > 1 for p in points)
        eligible = sum(1 for p in points if vector_eligible(context, p))
        assert eligible == len(points)

    def test_warm_directory_matches_scalar(self):
        config = paper_config()
        context = eval_context(config)
        warm = DirectoryState.warm(config.topology)
        points = sample_grid(seed=7, n=32)
        batched = evaluate_grid(context, points, warm)
        for streams, got in zip(points, batched):
            assert_identical(got, evaluate(config, streams, warm, context=context))

    def test_results_in_input_order(self):
        config = paper_config()
        context = eval_context(config)
        read = (StreamSpec(op=Op.READ, threads=4),)
        write = (StreamSpec(op=Op.WRITE, threads=4),)
        results = evaluate_grid(context, [read, write, read])
        assert results[0] == results[2]
        assert results[0].streams[0].spec.op is Op.READ
        assert results[1].streams[0].spec.op is Op.WRITE


class TestBatchKernel:
    def test_batch_matches_scalar_for_every_eligible_point(self):
        config = paper_config()
        context = eval_context(config)
        state = DirectoryState.cold()
        points = sample_grid(seed=99, n=96)
        specs = [p[0] for p in points if vector_eligible(context, p)]
        assert specs
        batched = evaluate_batch(context, specs, state)
        for spec, got in zip(specs, batched):
            assert_identical(got, evaluate(config, (spec,), state, context=context))

    def test_empty_batch(self):
        context = eval_context(paper_config())
        assert evaluate_batch(context, [], DirectoryState.cold()) == []
        assert evaluate_grid(context, []) == []


class TestObservabilityParity:
    def test_grid_emissions_match_scalar_exactly(self):
        # Counters fold float increments, so emission *order* matters at
        # the last ulp: the grid evaluator must emit in point order, not
        # batch-completion order, for snapshots to be byte-identical.
        config = paper_config()
        context = eval_context(config)
        points = sample_grid(seed=3, n=48)
        state = DirectoryState.cold()
        grid_rec, scalar_rec = CountersRecorder(), CountersRecorder()
        evaluate_grid(context, points, state, recorder=grid_rec)
        for streams in points:
            evaluate(config, streams, state, recorder=scalar_rec, context=context)
        assert grid_rec.snapshot() == scalar_rec.snapshot()


class TestEligibility:
    def test_plain_sequential_points_are_eligible(self):
        context = eval_context(paper_config())
        for op in (Op.READ, Op.WRITE):
            for media in (MediaKind.PMEM, MediaKind.DRAM):
                spec = StreamSpec(op=op, threads=8, media=media)
                assert vector_eligible(context, (spec,))

    def test_former_fallback_shapes_are_now_eligible(self):
        # The families the first-generation kernel punted on — the whole
        # point of the widened fast path.
        context = eval_context(paper_config())
        base = StreamSpec(op=Op.READ, threads=8)
        assert vector_eligible(context, (base, base))
        assert vector_eligible(context, (base.with_(pattern=Pattern.RANDOM),))
        assert vector_eligible(context, (base.with_(target_socket=1),))
        assert vector_eligible(context, (base.with_(pinning=PinningPolicy.NONE),))
        assert vector_eligible(context, (base.with_(dax_mode=DaxMode.FSDAX),))

    def test_points_the_scalar_evaluator_rejects_are_ineligible(self):
        # Eligibility must never claim a point the scalar path would
        # refuse: the fallback is what surfaces the real error.
        context = eval_context(paper_config())
        bad = StreamSpec(op=Op.READ, threads=8, target_socket=9, issuing_socket=9)
        assert not vector_eligible(context, (bad,))
