"""Tests for the hardware topology model."""

import dataclasses

import pytest

from repro.errors import TopologyError
from repro.memsim.topology import (
    MediaKind,
    UpiLink,
    build_topology,
    paper_server,
)
from repro.units import GIB


@pytest.fixture(scope="module")
def topo():
    return paper_server()


class TestPaperServer:
    def test_two_sockets(self, topo):
        assert topo.socket_count == 2

    def test_cores_per_socket(self, topo):
        assert topo.physical_core_count(0) == 18
        assert len(topo.logical_cores(0)) == 36

    def test_total_logical_cores(self, topo):
        assert len(topo.cores) == 72

    def test_numa_nodes(self, topo):
        assert len(topo.nodes) == 4
        assert all(len(n.core_ids) == 18 for n in topo.nodes)  # 9 phys + 9 HT

    def test_imcs(self, topo):
        assert len(topo.imcs) == 4

    def test_dimm_counts(self, topo):
        assert len(topo.dimms_of(0, MediaKind.PMEM)) == 6
        assert len(topo.dimms_of(0, MediaKind.DRAM)) == 6
        assert len(topo.dimms) == 24

    def test_pmem_capacity_is_1_5_tb(self, topo):
        assert topo.capacity(MediaKind.PMEM) == 12 * 128 * GIB

    def test_dram_capacity_is_192_gib(self, topo):
        assert topo.capacity(MediaKind.DRAM) == 12 * 16 * GIB

    def test_socket_capacity(self, topo):
        assert topo.socket_capacity(0, MediaKind.PMEM) == 6 * 128 * GIB

    def test_interleave_ways(self, topo):
        assert topo.interleave_ways(0, MediaKind.PMEM) == 6
        assert topo.interleave_ways(1, MediaKind.DRAM) == 6

    def test_far_socket(self, topo):
        assert topo.far_socket(0).socket_id == 1
        assert topo.far_socket(1).socket_id == 0

    def test_upi_link_exists(self, topo):
        link = topo.upi_between(0, 1)
        assert link.connects(0) and link.connects(1)

    def test_hyperthread_siblings_are_symmetric(self, topo):
        for core in topo.cores:
            sibling = topo.core(core.sibling_id)
            assert sibling.sibling_id == core.core_id
            assert sibling.is_hyperthread != core.is_hyperthread
            assert sibling.node_id == core.node_id

    def test_describe_mentions_both_sockets(self, topo):
        text = topo.describe()
        assert "socket 0" in text and "socket 1" in text


class TestLookupErrors:
    def test_unknown_socket(self, topo):
        with pytest.raises(TopologyError):
            topo.socket(9)

    def test_unknown_node(self, topo):
        with pytest.raises(TopologyError):
            topo.node(99)

    def test_unknown_core(self, topo):
        with pytest.raises(TopologyError):
            topo.core(1000)

    def test_unknown_upi_pair(self):
        single = build_topology(sockets=1)
        with pytest.raises(TopologyError):
            single.upi_between(0, 1)

    def test_far_socket_undefined_for_single_socket(self):
        single = build_topology(sockets=1)
        with pytest.raises(TopologyError):
            single.far_socket(0)


class TestBuildTopology:
    def test_single_socket(self):
        topo = build_topology(sockets=1)
        assert topo.socket_count == 1
        assert not topo.upi_links

    def test_four_socket_has_all_pairwise_links(self):
        topo = build_topology(sockets=4)
        assert len(topo.upi_links) == 6

    def test_rejects_zero_sockets(self):
        with pytest.raises(TopologyError):
            build_topology(sockets=0)

    def test_rejects_uneven_core_split(self):
        with pytest.raises(TopologyError):
            build_topology(physical_cores_per_socket=19)

    def test_rejects_node_imc_mismatch(self):
        with pytest.raises(TopologyError):
            build_topology(numa_nodes_per_socket=3, imcs_per_socket=2)

    def test_custom_capacity(self):
        topo = build_topology(pmem_dimm_capacity=256 * GIB)
        assert topo.capacity(MediaKind.PMEM) == 12 * 256 * GIB


class TestValidation:
    def test_validate_rejects_asymmetric_siblings(self):
        topo = paper_server()
        cores = list(topo.cores)
        broken = dataclasses.replace(cores[0], sibling_id=cores[0].core_id)
        cores[0] = broken
        bad = dataclasses.replace(topo, cores=tuple(cores))
        with pytest.raises(TopologyError):
            bad.validate()

    def test_validate_rejects_upi_self_loop(self):
        topo = paper_server()
        bad = dataclasses.replace(topo, upi_links=(UpiLink(0, 0),))
        with pytest.raises(TopologyError):
            bad.validate()

    def test_validate_rejects_missing_upi(self):
        topo = paper_server()
        bad = dataclasses.replace(topo, upi_links=())
        with pytest.raises(TopologyError):
            bad.validate()
