"""Tests for the mixed read/write discrete-event replay (§5.1).

The interference must *emerge* from the shared DIMM servers: write
fragments occupy a DIMM ~3x longer per byte, so reads queue behind them.
"""

import pytest

from repro.errors import WorkloadError
from repro.memsim import BandwidthModel
from repro.memsim.engine.simulator import (
    EngineConfig,
    MixedEngineConfig,
    simulate,
    simulate_mixed,
)
from repro.memsim.spec import Op
from repro.units import MIB


def _mixed(write_threads, read_threads, **kwargs):
    return simulate_mixed(
        MixedEngineConfig(
            read_threads=read_threads,
            write_threads=write_threads,
            bytes_per_side=kwargs.pop("bytes_per_side", 12 * MIB),
            **kwargs,
        )
    )


class TestValidation:
    def test_needs_threads_on_both_sides(self):
        with pytest.raises(WorkloadError):
            MixedEngineConfig(read_threads=0, write_threads=1)

    def test_volume_check(self):
        with pytest.raises(WorkloadError):
            MixedEngineConfig(
                read_threads=8, write_threads=8, bytes_per_side=4096
            )


class TestEmergentInterference:
    def test_writers_slow_readers(self):
        alone = simulate(
            EngineConfig(op=Op.READ, threads=18, access_size=4096, total_bytes=12 * MIB)
        ).gbps
        contended = _mixed(write_threads=6, read_threads=18).read_gbps
        assert contended < 0.8 * alone

    def test_single_reader_barely_dents_saturated_writers(self):
        alone = simulate(
            EngineConfig(op=Op.WRITE, threads=4, access_size=4096, total_bytes=12 * MIB)
        ).gbps
        contended = _mixed(write_threads=4, read_threads=1).write_gbps
        assert contended > 0.85 * alone

    def test_more_writers_hurt_reads_more(self):
        one = _mixed(write_threads=1, read_threads=18).read_gbps
        six = _mixed(write_threads=6, read_threads=18).read_gbps
        assert six < one

    def test_combined_below_read_max(self):
        result = _mixed(write_threads=6, read_threads=18)
        read_max = BandwidthModel().calibration.pmem.seq_read_max
        assert result.total_gbps <= read_max * 1.02

    def test_deterministic(self):
        a = _mixed(write_threads=4, read_threads=8)
        b = _mixed(write_threads=4, read_threads=8)
        assert a.seconds == b.seconds
        assert a.read_bytes == b.read_bytes


class TestAgreementWithAnalyticModel:
    @pytest.mark.parametrize("writers,readers", [(1, 30), (4, 8), (6, 18)])
    def test_directional_agreement(self, writers, readers):
        des = _mixed(write_threads=writers, read_threads=readers)
        analytic = BandwidthModel().mixed(
            write_threads=writers, read_threads=readers
        )
        # Coarse replay: agree within a 2.2x band on both sides and on
        # which side carries more bandwidth.
        assert des.read_gbps == pytest.approx(analytic.read_gbps, rel=1.2)
        assert des.write_gbps == pytest.approx(analytic.write_gbps, rel=1.2)
        assert (des.read_gbps > des.write_gbps) == (
            analytic.read_gbps > analytic.write_gbps
        )
