"""Tests for the L2 hardware prefetcher model."""

import pytest

from repro.errors import WorkloadError
from repro.memsim.calibration import paper_calibration
from repro.memsim.prefetcher import PrefetcherModel


@pytest.fixture(scope="module")
def cpu():
    return paper_calibration().cpu


@pytest.fixture(scope="module")
def enabled(cpu):
    return PrefetcherModel(cpu, enabled=True)


@pytest.fixture(scope="module")
def disabled(cpu):
    return PrefetcherModel(cpu, enabled=False)


class TestGroupedDip:
    def test_dip_covers_1k_and_2k(self, enabled):
        # §3.1: "the L2 hardware prefetcher performs poorly for 1 and
        # 2 KB access".
        assert enabled.grouped_sequential_factor(1024) < 1.0
        assert enabled.grouped_sequential_factor(2048) < 1.0

    def test_no_dip_outside_band(self, enabled):
        for size in (64, 256, 512, 4096, 65536):
            assert enabled.grouped_sequential_factor(size) == 1.0

    def test_disabling_prefetcher_removes_dip(self, disabled):
        # §3.1: with the prefetcher off the curve is constant above 256 B.
        assert disabled.grouped_sequential_factor(1024) == 1.0
        assert disabled.grouped_sequential_factor(2048) == 1.0

    def test_invalid_size(self, enabled):
        with pytest.raises(WorkloadError):
            enabled.grouped_sequential_factor(0)


class TestThreadScaling:
    def test_no_penalty_at_or_below_core_count(self, enabled):
        for threads in (1, 8, 18):
            assert enabled.thread_scaling_factor(threads, 18) == 1.0

    def test_imbalanced_hyperthreading_is_worst(self, enabled):
        # Fig. 4: 24 threads sit below the 18-thread peak while 36
        # (fully balanced pairs) recover it.
        f24 = enabled.thread_scaling_factor(24, 18)
        f36 = enabled.thread_scaling_factor(36, 18)
        assert f24 < f36
        assert f36 == pytest.approx(1.0)

    def test_disabled_prefetcher_hurts_low_thread_counts(self, disabled):
        # §3.2: "lower thread counts (<8) perform worse" without it.
        assert disabled.thread_scaling_factor(4, 18) < 1.0
        assert disabled.thread_scaling_factor(18, 18) == 1.0

    def test_disabled_prefetcher_stops_polluting_hyperthreads(self, disabled):
        # §3.2: with the prefetcher off, 36 threads reach the peak.
        assert disabled.thread_scaling_factor(36, 18) == 1.0

    def test_invalid_inputs(self, enabled):
        with pytest.raises(WorkloadError):
            enabled.thread_scaling_factor(0, 18)
        with pytest.raises(WorkloadError):
            enabled.thread_scaling_factor(4, 0)


class TestMultiStream:
    def test_single_stream_is_free(self, enabled):
        assert enabled.multi_stream_factor(1) == 1.0

    def test_second_stream_costs_a_little(self, enabled):
        # §5.1: one extra read stream drops 30-thread reads from ~31 to
        # ~29 GB/s (a few percent).
        factor = enabled.multi_stream_factor(2)
        assert 0.90 < factor < 1.0

    def test_floor(self, enabled):
        assert enabled.multi_stream_factor(100) == pytest.approx(0.80)

    def test_disabled_prefetcher_has_no_multi_stream_cost(self, disabled):
        assert disabled.multi_stream_factor(5) == 1.0
