"""Property-based tests of the memory-subsystem model invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import BandwidthModel, Layout, MediaKind
from repro.memsim.address import InterleaveMap
from repro.memsim.buffers import WriteCombiningModel
from repro.memsim.calibration import paper_calibration
from repro.memsim.imc import ImcModel

_CAL = paper_calibration()
_MODEL = BandwidthModel()

access_sizes = st.sampled_from([64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 65536])
thread_counts = st.integers(min_value=1, max_value=36)
layouts = st.sampled_from([Layout.GROUPED, Layout.INDIVIDUAL])


class TestBandwidthBounds:
    @given(threads=thread_counts, size=access_sizes, layout=layouts)
    @settings(max_examples=60, deadline=None)
    def test_read_bandwidth_within_device_limits(self, threads, size, layout):
        bw = _MODEL.sequential_read(threads, size, layout=layout)
        assert math.isfinite(bw)
        assert 0 < bw <= _CAL.pmem.seq_read_max * 1.001

    @given(threads=thread_counts, size=access_sizes, layout=layouts)
    @settings(max_examples=60, deadline=None)
    def test_write_bandwidth_within_device_limits(self, threads, size, layout):
        bw = _MODEL.sequential_write(threads, size, layout=layout)
        assert math.isfinite(bw)
        assert 0 < bw <= _CAL.pmem.seq_write_max * 1.001

    @given(threads=thread_counts, size=access_sizes)
    @settings(max_examples=40, deadline=None)
    def test_writes_never_beat_reads(self, threads, size):
        # The device's fundamental asymmetry must hold everywhere.
        read = _MODEL.sequential_read(threads, size)
        write = _MODEL.sequential_write(threads, size)
        assert write <= read * 1.001

    @given(threads=thread_counts, size=access_sizes)
    @settings(max_examples=40, deadline=None)
    def test_pmem_never_beats_dram(self, threads, size):
        pmem = _MODEL.sequential_read(threads, size)
        dram = _MODEL.sequential_read(threads, size, media=MediaKind.DRAM)
        assert pmem <= dram * 1.001

    @given(threads=thread_counts, size=st.sampled_from([64, 256, 1024, 4096, 8192]))
    @settings(max_examples=40, deadline=None)
    def test_random_never_beats_sequential(self, threads, size):
        rand = _MODEL.random_read(threads, size)
        seq = _MODEL.sequential_read(max(threads, 18), max(size, 4096))
        assert rand <= seq * 1.001


class TestFarVsNear:
    @given(threads=thread_counts)
    @settings(max_examples=30, deadline=None)
    def test_far_reads_never_beat_near(self, threads):
        near = _MODEL.sequential_read(threads, 4096)
        far = _MODEL.sequential_read(threads, 4096, far=True, warm=True)
        assert far <= near * 1.001

    @given(threads=thread_counts)
    @settings(max_examples=30, deadline=None)
    def test_cold_far_never_beats_warm_far(self, threads):
        _MODEL.reset_directory()
        cold = _MODEL.sequential_read(threads, 4096, far=True, warm=False)
        warm = _MODEL.sequential_read(threads, 4096, far=True, warm=True)
        assert cold <= warm * 1.001

    @given(threads=thread_counts)
    @settings(max_examples=30, deadline=None)
    def test_far_writes_never_beat_near(self, threads):
        near = _MODEL.sequential_write(threads, 4096)
        far = _MODEL.sequential_write(threads, 4096, far=True)
        assert far <= near * 1.001


class TestInterleaveProperties:
    @given(
        ways=st.integers(min_value=1, max_value=12),
        address=st.integers(min_value=0, max_value=1 << 40),
        size=st.integers(min_value=1, max_value=1 << 22),
    )
    @settings(max_examples=80, deadline=None)
    def test_dimms_touched_bounds(self, ways, address, size):
        interleave = InterleaveMap(ways=ways)
        touched = interleave.dimms_touched(address, size)
        assert 1 <= len(touched) <= ways
        assert all(0 <= d < ways for d in touched)

    @given(
        ways=st.integers(min_value=1, max_value=12),
        address=st.integers(min_value=0, max_value=1 << 40),
    )
    @settings(max_examples=80, deadline=None)
    def test_dimm_of_consistent_with_touched(self, ways, address):
        interleave = InterleaveMap(ways=ways)
        assert interleave.dimm_of(address) in interleave.dimms_touched(address, 1)

    @given(
        window=st.floats(min_value=1.0, max_value=1e12, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_window_parallelism_bounds(self, window):
        interleave = InterleaveMap(ways=6)
        parallelism = interleave.window_parallelism(window)
        assert 1.0 <= parallelism <= 6.0


class TestWriteCombiningProperties:
    wc = WriteCombiningModel(_CAL.pmem)

    @given(threads=thread_counts, size=access_sizes)
    @settings(max_examples=60, deadline=None)
    def test_efficiency_in_unit_interval(self, threads, size):
        eff = self.wc.efficiency(threads, size)
        assert _CAL.pmem.wc_floor - 1e-9 <= eff <= 1.0

    @given(threads=thread_counts, size=access_sizes)
    @settings(max_examples=60, deadline=None)
    def test_amplification_at_least_one(self, threads, size):
        for grouped in (False, True):
            assert self.wc.write_amplification(threads, size, grouped) >= 1.0 - 1e-9

    @given(
        t1=thread_counts, t2=thread_counts, size=access_sizes,
    )
    @settings(max_examples=60, deadline=None)
    def test_efficiency_antitone_in_threads(self, t1, t2, size):
        lo, hi = sorted((t1, t2))
        assert self.wc.efficiency(lo, size) >= self.wc.efficiency(hi, size) - 1e-9


class TestImcProperties:
    imc = ImcModel()

    @given(
        offered=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
        service=st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_occupancy_in_unit_interval(self, offered, service):
        assert 0.0 <= self.imc.occupancy(offered, service) <= 1.0
