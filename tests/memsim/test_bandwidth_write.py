"""Sequential-write bandwidth tests (paper §4, Figures 7-10)."""

import pytest

from repro.memsim import BandwidthModel, Layout, MediaKind, PinningPolicy


@pytest.fixture
def model():
    return BandwidthModel()


class TestFig7AccessSize:
    def test_global_maximum_at_4k(self, model):
        sizes = [64, 256, 1024, 4096, 16384, 65536, 1 << 25]
        threads = [1, 2, 4, 6, 8, 18, 24, 36]
        best = max(
            ((model.sequential_write(t, s, layout=lay), s)
             for t in threads for s in sizes
             for lay in (Layout.GROUPED, Layout.INDIVIDUAL)),
        )
        assert best[1] == 4096
        assert best[0] == pytest.approx(13.2, rel=0.06)

    def test_grouped_64b_vs_individual_64b(self, model):
        # §4.1: 2.6 vs 9.6 GB/s with 64 B and 36 threads.
        grouped = model.sequential_write(36, 64, layout=Layout.GROUPED)
        individual = model.sequential_write(36, 64)
        assert individual > 3 * grouped
        assert individual == pytest.approx(9.6, rel=0.1)

    def test_256b_secondary_peak(self, model):
        # All thread counts above 18 achieve ~10 GB/s at 256 B.
        for threads in (18, 24, 36):
            bw = model.sequential_write(threads, 256)
            assert 8.0 < bw < 13.0

    def test_high_thread_counts_decay_beyond_256b(self, model):
        # §4.2: ">18 threads ... decreases significantly, stabilizing at
        # around 5-6 GB/s" for access sizes beyond the 256 B peak.
        plateau = model.sequential_write(36, 65536)
        assert 4.5 < plateau < 7.0
        assert plateau < model.sequential_write(36, 256)

    def test_counterintuitive_rule(self, model):
        # "The higher the thread count, the lower the access size must
        # be" for peak bandwidth.
        best_size_36 = max(
            (64, 256, 1024, 4096, 16384),
            key=lambda s: model.sequential_write(36, s),
        )
        best_size_4 = max(
            (64, 256, 1024, 4096, 16384),
            key=lambda s: model.sequential_write(4, s),
        )
        assert best_size_36 < best_size_4


class TestFig8Boomerang:
    def test_few_threads_hold_peak_at_any_size(self, model):
        # Bottom edge of the boomerang: 4-6 threads keep >10 GB/s out to
        # 32 MB accesses.
        for size in (4096, 65536, 1 << 25):
            assert model.sequential_write(4, size) > 10.0
            assert model.sequential_write(6, size) > 10.0

    def test_many_threads_hold_peakish_at_small_sizes(self, model):
        # Top-left edge: high thread counts tolerate small accesses.
        assert model.sequential_write(36, 256) > 8.0

    def test_scaling_both_axes_collapses(self, model):
        # Scaling threads AND size together is the failure mode.
        assert model.sequential_write(36, 65536) < 7.0

    def test_eight_threads_drop_beyond_4k(self, model):
        # Fig. 7a: the 8-thread configuration peaks at 4 KB then drops
        # to ~8 GB/s.
        at_4k = model.sequential_write(8, 4096)
        at_16k = model.sequential_write(8, 16384)
        assert at_4k > at_16k
        assert at_16k == pytest.approx(8.5, rel=0.15)

    def test_write_combining_ablation(self):
        # Without the combining buffer every store is a read-modify-write
        # and even the friendly configurations collapse.
        on = BandwidthModel()
        off = BandwidthModel(write_combining_enabled=False)
        assert off.sequential_write(4, 4096) < 0.5 * on.sequential_write(4, 4096)


class TestFig7ThreadCount:
    def test_4_to_6_threads_saturate(self, model):
        # §4.2: "4 threads are sufficient to fully saturate the PMEM
        # bandwidth".
        b4 = model.sequential_write(4, 4096)
        b6 = model.sequential_write(6, 4096)
        assert b4 > 12.0
        assert b6 >= b4 * 0.95

    def test_more_threads_harm_large_writes(self, model):
        b6 = model.sequential_write(6, 16384)
        b18 = model.sequential_write(18, 16384)
        b36 = model.sequential_write(36, 16384)
        assert b6 > b18 >= b36

    def test_small_writes_tolerate_many_threads(self, model):
        # §4.2: strictly-sequential small writes are not harmed severely.
        b18 = model.sequential_write(18, 256)
        b36 = model.sequential_write(36, 256)
        assert b36 >= 0.8 * b18

    def test_single_thread_rate(self, model):
        # Per-thread write rate anchor: ~3.2 GB/s at 4 KB.
        assert model.sequential_write(1, 4096) == pytest.approx(3.16, rel=0.05)


class TestFig9WritePinning:
    def test_pinning_order(self, model):
        for threads in (4, 8, 18, 36):
            cores = model.sequential_write(threads, 4096)
            numa = model.sequential_write(
                threads, 4096, pinning=PinningPolicy.NUMA_REGION
            )
            none = model.sequential_write(threads, 4096, pinning=PinningPolicy.NONE)
            assert cores >= numa > none

    def test_unpinned_writes_2x_worse(self, model):
        # Fig. 9: ~7 vs ~13 GB/s peaks.
        pinned_peak = max(model.sequential_write(t, 4096) for t in (4, 6, 8))
        unpinned_peak = max(
            model.sequential_write(t, 4096, pinning=PinningPolicy.NONE)
            for t in (4, 6, 8)
        )
        assert pinned_peak / unpinned_peak == pytest.approx(2.0, rel=0.2)

    def test_unpinned_less_harmful_than_for_reads(self, model):
        # §4.3: "no pinning is 2x worse for writing ... 4x worse for
        # reading".
        read_ratio = model.sequential_read(18, 4096) / model.sequential_read(
            18, 4096, pinning=PinningPolicy.NONE
        )
        write_ratio = model.sequential_write(8, 4096) / model.sequential_write(
            8, 4096, pinning=PinningPolicy.NONE
        )
        assert read_ratio > write_ratio


class TestFig10FarWrites:
    def test_far_write_peak_around_7(self, model):
        peak = max(model.sequential_write(t, 4096, far=True) for t in (4, 6, 8, 18))
        assert peak == pytest.approx(7.0, rel=0.1)

    def test_far_needs_more_threads_than_near(self, model):
        # §4.4: 6-8 threads to peak far vs 4 near.
        near_curve = {t: model.sequential_write(t, 4096) for t in (2, 4, 6, 8, 18)}
        far_curve = {t: model.sequential_write(t, 4096, far=True) for t in (2, 4, 6, 8, 18)}
        near_best = min(t for t, v in near_curve.items() if v >= 0.99 * max(near_curve.values()))
        far_best = min(t for t, v in far_curve.items() if v >= 0.99 * max(far_curve.values()))
        assert far_best > near_best

    def test_far_write_at_most_half_of_near(self, model):
        # §4.5: far writes reach at most 50% of near bandwidth.
        near = max(model.sequential_write(t, 4096) for t in (4, 6, 8))
        far = max(model.sequential_write(t, 4096, far=True) for t in (4, 6, 8, 18))
        assert far <= 0.6 * near

    def test_no_warmup_for_writes(self, model):
        # §4.4: "Unlike reading, we do not observe any warm-up effect".
        model.reset_directory()
        first = model.sequential_write(8, 4096, far=True)
        second = model.sequential_write(8, 4096, far=True)
        assert first == pytest.approx(second)


class TestDramWrites:
    def test_dram_writes_scale_with_threads(self, model):
        # §4.2: DRAM keeps gaining with more threads.
        values = [
            model.sequential_write(t, 4096, media=MediaKind.DRAM)
            for t in (1, 4, 8, 18)
        ]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_dram_no_large_access_decay(self, model):
        b4k = model.sequential_write(18, 4096, media=MediaKind.DRAM)
        b1m = model.sequential_write(18, 1 << 20, media=MediaKind.DRAM)
        assert b1m >= 0.95 * b4k

    def test_pmem_writes_about_a_seventh_of_dram(self, model):
        # §2.1: "writing a seventh of the bandwidth of DRAM".
        pmem = model.sequential_write(6, 4096)
        dram = model.sequential_write(18, 4096, media=MediaKind.DRAM)
        assert 4.0 < dram / pmem < 8.0
