"""Tests for the calibration profile and its validation."""

import dataclasses

import pytest

from repro.errors import CalibrationError
from repro.memsim.calibration import (
    DeviceCalibration,
    DramCalibration,
    PmemCalibration,
    paper_calibration,
)


@pytest.fixture(scope="module")
def cal():
    return paper_calibration()


class TestPaperCalibration:
    def test_validates(self, cal):
        cal.validate()  # must not raise

    def test_pmem_read_write_asymmetry(self, cal):
        # §2.1: reading yields ~3x, writing ~7x less than DRAM — so PMEM
        # writes must be well below PMEM reads.
        assert cal.pmem.seq_write_max < cal.pmem.seq_read_max / 2

    def test_pmem_vs_dram_read_ratio(self, cal):
        # PMEM reads are roughly a third of DRAM's (§2.1).
        ratio = cal.dram.seq_read_max / cal.pmem.seq_read_max
        assert 2.0 < ratio < 3.5

    def test_upi_payload_capacity(self, cal):
        # ~25% of the link is metadata; payload capacity must sit between
        # the paper's quoted ~30 GB/s and the measured 33 GB/s far reads.
        assert 30.0 <= cal.upi.data_per_direction <= 34.0

    def test_far_read_ordering(self, cal):
        p = cal.pmem
        assert p.cold_far_read_max < p.warm_far_read_max < p.seq_read_max

    def test_ssd_is_slowest(self, cal):
        assert cal.ssd.seq_read_max < cal.pmem.seq_write_max


class TestValidationRejectsBadProfiles:
    def _with_pmem(self, cal, **changes):
        return dataclasses.replace(cal, pmem=dataclasses.replace(cal.pmem, **changes))

    def test_negative_bandwidth(self, cal):
        bad = self._with_pmem(cal, seq_read_max=-1.0)
        with pytest.raises(CalibrationError):
            bad.validate()

    def test_pmem_faster_than_dram(self, cal):
        bad = self._with_pmem(cal, seq_read_max=500.0)
        with pytest.raises(CalibrationError):
            bad.validate()

    def test_writes_faster_than_reads(self, cal):
        bad = self._with_pmem(cal, seq_write_max=100.0)
        with pytest.raises(CalibrationError):
            bad.validate()

    def test_cold_far_above_warm_far(self, cal):
        bad = self._with_pmem(cal, cold_far_read_max=35.0)
        with pytest.raises(CalibrationError):
            bad.validate()

    def test_warm_far_above_near(self, cal):
        bad = self._with_pmem(cal, warm_far_read_max=45.0)
        with pytest.raises(CalibrationError):
            bad.validate()

    def test_random_fraction_above_one(self, cal):
        bad = self._with_pmem(cal, random_read_peak_fraction=1.5)
        with pytest.raises(CalibrationError):
            bad.validate()

    def test_fast_ssd_rejected(self, cal):
        bad = dataclasses.replace(
            cal, ssd=dataclasses.replace(cal.ssd, seq_read_max=50.0)
        )
        with pytest.raises(CalibrationError):
            bad.validate()


class TestCustomProfiles:
    def test_alternate_generation_profile_validates(self):
        # A hypothetical faster PMEM generation still validates as long
        # as the orderings hold.
        cal = DeviceCalibration(
            pmem=PmemCalibration(seq_read_max=60.0, warm_far_read_max=50.0,
                                 seq_write_max=25.0, cold_far_read_max=12.0),
            dram=DramCalibration(seq_read_max=200.0),
        )
        cal.validate()

    def test_profiles_are_frozen(self, cal):
        with pytest.raises(dataclasses.FrozenInstanceError):
            cal.pmem.seq_read_max = 99.0
