"""Random-access bandwidth tests (paper §5.2 / Figures 12-13)."""

import pytest

from repro.memsim import BandwidthModel, MediaKind
from repro.units import GIB


@pytest.fixture
def model():
    return BandwidthModel()


class TestFig12RandomReads:
    def test_pmem_tops_out_at_two_thirds_sequential(self, model):
        seq = model.sequential_read(18, 4096)
        rand = max(
            model.random_read(t, 8192) for t in (8, 18, 24, 36)
        )
        assert 0.55 < rand / seq < 0.75

    def test_pmem_256b_about_half_sequential(self, model):
        seq = model.sequential_read(36, 4096)
        rand = model.random_read(36, 256)
        assert 0.3 < rand / seq < 0.6

    def test_more_threads_help_random_reads(self, model):
        values = [model.random_read(t, 256) for t in (1, 4, 8, 18, 24, 36)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_hyperthreading_helps_random_unlike_sequential(self, model):
        # §5.2: "hyperthreading improves the PMEM bandwidth, unlike
        # sequential reads".
        assert model.random_read(36, 256) > model.random_read(18, 256)
        assert model.sequential_read(36, 4096) <= model.sequential_read(18, 4096) * 1.01

    def test_bandwidth_monotone_in_access_size(self, model):
        values = [model.random_read(36, s) for s in (64, 256, 1024, 4096, 8192)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_sub_line_amplification_hurts(self, model):
        # 64 B random reads pay the 256 B media line.
        assert model.random_read(36, 64) < 0.5 * model.random_read(36, 256)


class TestFig12DramRegionEffect:
    def test_small_region_uses_half_channels(self, model):
        small = model.random_read(36, 512, media=MediaKind.DRAM, region_bytes=2 * GIB)
        large = model.random_read(36, 512, media=MediaKind.DRAM, region_bytes=90 * GIB)
        assert large > 1.5 * small

    def test_large_region_reaches_90_percent_of_sequential(self, model):
        seq = model.sequential_read(18, 4096, media=MediaKind.DRAM)
        rand = model.random_read(36, 8192, media=MediaKind.DRAM, region_bytes=90 * GIB)
        assert rand / seq == pytest.approx(0.9, rel=0.06)

    def test_dram_4x_over_pmem_at_512b_large_region(self, model):
        # §5.2: large-region DRAM shows "4x bandwidth over PMEM for 512
        # Byte".
        dram = model.random_read(36, 512, media=MediaKind.DRAM, region_bytes=90 * GIB)
        pmem = model.random_read(36, 512)
        assert 2.5 < dram / pmem < 5.5

    def test_pmem_is_region_size_independent(self, model):
        # PMEM is interleaved at 4 KB regardless of allocation size.
        small = model.random_read(36, 512, region_bytes=2 * GIB)
        large = model.random_read(36, 512, region_bytes=90 * GIB)
        assert small == pytest.approx(large)


class TestFig13RandomWrites:
    def test_pmem_peak_with_4_to_6_threads(self, model):
        curve = {t: model.random_write(t, 4096) for t in (1, 2, 4, 6, 8, 18, 36)}
        best = max(curve, key=curve.get)
        assert best in (4, 6)

    def test_pmem_tops_out_at_two_thirds_sequential(self, model):
        seq = max(model.sequential_write(t, 4096) for t in (4, 6))
        rand = max(model.random_write(t, 8192) for t in (4, 6))
        assert 0.5 < rand / seq < 0.8

    def test_larger_access_improves_pmem_random_writes(self, model):
        values = [model.random_write(6, s) for s in (64, 256, 1024, 4096)]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_many_threads_hurt_pmem_random_writes(self, model):
        assert model.random_write(36, 4096) < model.random_write(6, 4096)

    def test_dram_random_writes_scale_with_threads(self, model):
        values = [
            model.random_write(t, 1024, media=MediaKind.DRAM) for t in (1, 8, 18, 36)
        ]
        assert all(a <= b + 1e-9 for a, b in zip(values, values[1:]))

    def test_dram_insensitive_to_access_size_beyond_1k(self, model):
        b1k = model.random_write(36, 1024, media=MediaKind.DRAM)
        b8k = model.random_write(36, 8192, media=MediaKind.DRAM)
        assert b8k <= 1.35 * b1k


class TestInsight12:
    def test_sequential_beats_random_everywhere(self, model):
        # Insight #12: access PMEM sequentially when possible.
        for threads in (8, 18, 36):
            assert model.sequential_read(threads, 4096) > model.random_read(
                threads, 4096
            )
        for threads in (4, 6):
            assert model.sequential_write(threads, 4096) > model.random_write(
                threads, 4096
            )

    def test_use_largest_possible_random_access(self, model):
        # Insight #12: the largest access wins for random workloads.
        assert model.random_read(36, 4096) > model.random_read(36, 256)
        assert model.random_read(36, 256) >= model.random_read(36, 64)
