"""Multi-socket evaluation tests (paper §3.5 / Fig. 6, §4.5 / Fig. 10)."""

import pytest

from repro.memsim import (
    BandwidthModel,
    MediaKind,
    Op,
    PinningPolicy,
    StreamSpec,
)


@pytest.fixture
def model():
    m = BandwidthModel()
    m.warm_directory()
    return m


def read18(**kwargs):
    return StreamSpec(
        op=Op.READ, threads=18, pinning=PinningPolicy.NUMA_REGION, **kwargs
    )


def write_stream(threads=4, **kwargs):
    return StreamSpec(
        op=Op.WRITE, threads=threads, pinning=PinningPolicy.NUMA_REGION, **kwargs
    )


class TestFig6aPmemReads:
    def test_two_near_doubles(self, model):
        one = model.evaluate([read18()]).total_gbps
        two = model.evaluate(
            [read18(), read18(issuing_socket=1, target_socket=1)]
        ).total_gbps
        assert two == pytest.approx(2 * one, rel=0.02)
        assert two == pytest.approx(80.0, rel=0.05)

    def test_two_far_flattens_at_50(self, model):
        result = model.evaluate(
            [
                read18(issuing_socket=0, target_socket=1),
                read18(issuing_socket=1, target_socket=0),
            ]
        )
        assert result.total_gbps == pytest.approx(50.0, rel=0.05)

    def test_two_far_saturates_upi(self, model):
        # §3.5: VTune shows 90%+ average UPI utilization.
        result = model.evaluate(
            [
                read18(issuing_socket=0, target_socket=1),
                read18(issuing_socket=1, target_socket=0),
            ]
        )
        assert result.counters.upi_utilization >= 0.85

    def test_shared_target_collapses(self, model):
        # Fig. 6a (v): near + far readers on the same PMEM "yields a very
        # low bandwidth" — below either single-socket configuration.
        result = model.evaluate(
            [read18(), read18(issuing_socket=1, target_socket=0)]
        )
        near_alone = model.evaluate([read18()]).total_gbps
        far_alone = model.evaluate(
            [read18(issuing_socket=1, target_socket=0)]
        ).total_gbps
        assert result.total_gbps < near_alone
        assert result.total_gbps < far_alone

    def test_two_near_does_not_use_upi(self, model):
        result = model.evaluate(
            [read18(), read18(issuing_socket=1, target_socket=1)]
        )
        assert result.counters.upi_utilization == 0.0
        assert result.counters.upi_bytes == 0.0


class TestFig6bDramReads:
    def test_two_near_reaches_185(self, model):
        result = model.evaluate(
            [
                read18(media=MediaKind.DRAM),
                read18(issuing_socket=1, target_socket=1, media=MediaKind.DRAM),
            ]
        )
        assert result.total_gbps == pytest.approx(185.0, rel=0.03)

    def test_far_dram_is_upi_bound_at_33(self, model):
        result = model.evaluate(
            [read18(issuing_socket=0, target_socket=1, media=MediaKind.DRAM)]
        )
        assert result.total_gbps == pytest.approx(33.0, rel=0.05)

    def test_two_far_dram_near_60(self, model):
        result = model.evaluate(
            [
                read18(issuing_socket=0, target_socket=1, media=MediaKind.DRAM),
                read18(issuing_socket=1, target_socket=0, media=MediaKind.DRAM),
            ]
        )
        assert result.total_gbps == pytest.approx(60.0, rel=0.05)

    def test_dram_far_penalty_stronger_than_pmem(self, model):
        # Fig. 6: DRAM loses ~2/3 going far (100 -> 33), PMEM only ~18%.
        pmem_ratio = model.evaluate(
            [read18(issuing_socket=0, target_socket=1)]
        ).total_gbps / model.evaluate([read18()]).total_gbps
        dram_ratio = model.evaluate(
            [read18(issuing_socket=0, target_socket=1, media=MediaKind.DRAM)]
        ).total_gbps / model.evaluate([read18(media=MediaKind.DRAM)]).total_gbps
        assert dram_ratio < pmem_ratio

    def test_dram_shared_target_nearly_matches_two_far(self, model):
        # Fig. 6b (v): "nearly achieving the performance of only far
        # access on both sockets for DRAM".
        shared = model.evaluate(
            [
                read18(media=MediaKind.DRAM),
                read18(issuing_socket=1, target_socket=0, media=MediaKind.DRAM),
            ]
        ).total_gbps
        two_far = model.evaluate(
            [
                read18(issuing_socket=0, target_socket=1, media=MediaKind.DRAM),
                read18(issuing_socket=1, target_socket=0, media=MediaKind.DRAM),
            ]
        ).total_gbps
        assert shared > 0.85 * two_far


class TestFig10MultiSocketWrites:
    def test_two_near_doubles(self, model):
        one = model.evaluate([write_stream()]).total_gbps
        two = model.evaluate(
            [write_stream(), write_stream(issuing_socket=1, target_socket=1)]
        ).total_gbps
        assert two == pytest.approx(2 * one, rel=0.02)

    def test_two_far_peaks_around_13(self, model):
        result = model.evaluate(
            [
                write_stream(threads=8, issuing_socket=0, target_socket=1),
                write_stream(threads=8, issuing_socket=1, target_socket=0),
            ]
        )
        assert result.total_gbps == pytest.approx(13.0, rel=0.1)

    def test_near_plus_far_same_pmem_capped_at_8(self, model):
        result = model.evaluate(
            [
                write_stream(threads=4),
                write_stream(threads=8, issuing_socket=1, target_socket=0),
            ]
        )
        assert result.total_gbps == pytest.approx(8.0, rel=0.05)

    def test_contended_write_worse_than_near_alone(self, model):
        contended = model.evaluate(
            [
                write_stream(threads=4),
                write_stream(threads=8, issuing_socket=1, target_socket=0),
            ]
        ).total_gbps
        near_alone = model.evaluate([write_stream(threads=4)]).total_gbps
        assert contended < near_alone

    def test_far_write_amplification_up_to_10x(self, model):
        result = model.evaluate(
            [write_stream(threads=18, issuing_socket=0, target_socket=1)]
        )
        assert result.counters.write_amplification == pytest.approx(10.0, rel=0.05)

    def test_near_write_amplification_is_low(self, model):
        result = model.evaluate([write_stream(threads=4)])
        assert result.counters.write_amplification == pytest.approx(1.0)


class TestEvaluateValidation:
    def test_empty_stream_list_rejected(self, model):
        from repro.errors import WorkloadError

        with pytest.raises(WorkloadError):
            model.evaluate([])

    def test_unknown_socket_rejected(self, model):
        from repro.errors import TopologyError

        with pytest.raises(TopologyError):
            model.evaluate([read18(issuing_socket=7)])

    def test_per_stream_results_reported(self, model):
        result = model.evaluate(
            [read18(), read18(issuing_socket=1, target_socket=1)]
        )
        assert len(result.streams) == 2
        assert all(s.gbps > 0 for s in result.streams)
