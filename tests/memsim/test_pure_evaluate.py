"""The pure core: evaluate() is a function of its three arguments."""

from repro.memsim import DirectoryState, Op, StreamSpec, evaluate, paper_config
from repro.memsim.bandwidth import BandwidthModel

FAR_READ = StreamSpec(
    op=Op.READ, threads=8, access_size=4096, issuing_socket=0, target_socket=1
)
FAR_WRITE = StreamSpec(
    op=Op.WRITE, threads=8, access_size=4096, issuing_socket=0, target_socket=1
)
NEAR_READ = StreamSpec(op=Op.READ, threads=18, access_size=4096)


class TestPurity:
    def test_repeated_calls_bit_identical(self):
        config = paper_config()
        for streams in ((NEAR_READ,), (FAR_READ,), (FAR_WRITE, NEAR_READ)):
            first = evaluate(config, streams, DirectoryState.cold())
            second = evaluate(config, streams, DirectoryState.cold())
            assert first.total_gbps == second.total_gbps
            assert [s.gbps for s in first.streams] == [s.gbps for s in second.streams]

    def test_inputs_not_mutated(self):
        config = paper_config()
        state = DirectoryState.cold()
        evaluate(config, (FAR_READ,), state)
        assert state == DirectoryState.cold()
        assert config == paper_config()

    def test_directory_argument_changes_result(self):
        config = paper_config()
        cold = evaluate(config, (FAR_READ,), DirectoryState.cold())
        warm = evaluate(config, (FAR_READ,), DirectoryState.warm(config.topology))
        assert cold.total_gbps < warm.total_gbps

    def test_default_directory_is_cold(self):
        config = paper_config()
        assert (
            evaluate(config, (FAR_READ,)).total_gbps
            == evaluate(config, (FAR_READ,), DirectoryState.cold()).total_gbps
        )


class TestDirectoryAfter:
    def test_far_read_warms_its_pair(self):
        config = paper_config()
        result = evaluate(config, (FAR_READ,), DirectoryState.cold())
        assert result.directory_after.warm_pairs == {(0, 1)}

    def test_far_write_also_warms(self):
        config = paper_config()
        result = evaluate(config, (FAR_WRITE,), DirectoryState.cold())
        assert result.directory_after.warm_pairs == {(0, 1)}

    def test_near_stream_leaves_state_unchanged(self):
        config = paper_config()
        result = evaluate(config, (NEAR_READ,), DirectoryState.cold())
        assert result.directory_after == DirectoryState.cold()

    def test_second_evaluation_from_after_state_runs_warm(self):
        config = paper_config()
        first = evaluate(config, (FAR_READ,), DirectoryState.cold())
        second = evaluate(config, (FAR_READ,), first.directory_after)
        assert second.total_gbps > first.total_gbps


class TestFacadeEquivalence:
    def test_facade_matches_pure_core(self):
        model = BandwidthModel()
        pure_cold = evaluate(model.config, (FAR_READ,), DirectoryState.cold())
        facade_cold = model.evaluate([FAR_READ])
        assert facade_cold.total_gbps == pure_cold.total_gbps
        # The façade replays the warm-up onto its mutable directory.
        pure_warm = evaluate(model.config, (FAR_READ,), pure_cold.directory_after)
        assert model.evaluate([FAR_READ]).total_gbps == pure_warm.total_gbps

    def test_result_copy_isolates_counters(self):
        result = evaluate(paper_config(), (NEAR_READ,), DirectoryState.cold())
        clone = result.copy()
        clone.counters.note("mutated clone")
        assert "mutated clone" not in result.counters.notes
        assert clone.streams is result.streams
