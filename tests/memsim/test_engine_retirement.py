"""Bit-identity regression for the in-order-retirement data structure.

The per-thread ``outstanding`` completion lists retire from the front.
They were ``list``s using ``pop(0)`` — O(n) per retirement, O(n^2) over a
run once the MLP budget grows (sub-line reads get ``640 // size + 2``
outstanding ops). Switching to ``collections.deque.popleft()`` is a pure
data-structure change: the values pushed, the comparisons made, and the
retirement order are untouched, so every engine output must stay
bit-identical. The hex-float goldens below were captured from the
``list.pop(0)`` implementation immediately before the switch.
"""

from repro.memsim.engine.simulator import (
    EngineConfig,
    MixedEngineConfig,
    simulate,
    simulate_mixed,
)
from repro.memsim.spec import Layout, Op, Pattern
from repro.units import MIB

#: ``float.hex()`` of seconds/media_bytes from the pre-deque engine.
GOLDEN_RUNS = {
    "read_ind_4k_18t": (
        EngineConfig(op=Op.READ, threads=18, access_size=4096, total_bytes=8 * MIB),
        {
            "seconds": "0x1.b553c56c7f49fp-13",
            "bytes_moved": 8331264,
            "per_dimm_bytes": [1388544] * 6,
            "media_bytes": "0x1.fc80000000000p+22",
        },
    ),
    # 64 B reads have the largest MLP budget (640 // 64 + 2 = 12): the
    # deepest pending deques, i.e. the case the data structure matters for.
    "read_grp_64b_36t": (
        EngineConfig(
            op=Op.READ, threads=36, access_size=64,
            layout=Layout.GROUPED, total_bytes=2 * MIB,
        ),
        {
            "seconds": "0x1.a8b274585ff22p-13",
            "bytes_moved": 2096640,
            "per_dimm_bytes": [352256, 351744, 348160, 348160, 348160, 348160],
            "media_bytes": "0x1.eb3c000000000p+22",
        },
    ),
    # Writes never touch `outstanding`; they pin the surrounding loop.
    "write_ind_16k_18t": (
        EngineConfig(op=Op.WRITE, threads=18, access_size=16384, total_bytes=8 * MIB),
        {
            "seconds": "0x1.93cd2ce4afbfbp-10",
            "bytes_moved": 8257536,
            "per_dimm_bytes": [1376256] * 6,
            "media_bytes": "0x1.363aaf0030b4dp+24",
        },
    ),
    "read_rand_64b_8t": (
        EngineConfig(
            op=Op.READ, threads=8, access_size=64,
            pattern=Pattern.RANDOM, total_bytes=1 * MIB,
        ),
        {
            "seconds": "0x1.503b7914ba44ap-10",
            "bytes_moved": 1048576,
            "per_dimm_bytes": [180160, 180032, 176192, 171648, 169344, 171200],
            "media_bytes": "0x1.f408000000000p+21",
        },
    ),
}


def test_retirement_swap_is_bit_identical():
    for name, (config, want) in GOLDEN_RUNS.items():
        result = simulate(config)
        assert result.seconds.hex() == want["seconds"], name
        assert result.bytes_moved == want["bytes_moved"], name
        assert result.per_dimm_bytes == want["per_dimm_bytes"], name
        assert result.media_bytes.hex() == want["media_bytes"], name


def test_mixed_retirement_swap_is_bit_identical():
    result = simulate_mixed(
        MixedEngineConfig(read_threads=8, write_threads=4, bytes_per_side=4 * MIB)
    )
    assert result.seconds.hex() == "0x1.04682be2262c5p-12"
    assert result.read_bytes == 4161536
    assert result.write_bytes == 847872
