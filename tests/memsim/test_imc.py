"""Tests for the iMC queue model."""

import pytest

from repro.errors import WorkloadError
from repro.memsim.imc import ImcModel


@pytest.fixture(scope="module")
def imc():
    return ImcModel()


class TestOccupancy:
    def test_idle_queue_is_empty(self, imc):
        assert imc.occupancy(0.0, 10.0) == 0.0

    def test_saturated_queue_is_full(self, imc):
        assert imc.occupancy(10.0, 10.0) == 1.0
        assert imc.occupancy(50.0, 10.0) == 1.0

    def test_monotone_in_offered_load(self, imc):
        values = [imc.occupancy(x, 10.0) for x in (1.0, 3.0, 6.0, 9.0, 9.9)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_bounded(self, imc):
        for x in (0.5, 5.0, 9.99):
            assert 0.0 <= imc.occupancy(x, 10.0) <= 1.0

    def test_rejects_bad_service_rate(self, imc):
        with pytest.raises(WorkloadError):
            imc.occupancy(1.0, 0.0)

    def test_rejects_negative_load(self, imc):
        with pytest.raises(WorkloadError):
            imc.occupancy(-1.0, 10.0)


class TestPollutionParameters:
    def test_cross_socket_amplification_above_one(self, imc):
        assert imc.cross_socket_read_amplification > 1.0

    def test_far_far_pollution_below_one(self, imc):
        assert 0.0 < imc.far_far_pollution_factor < 1.0
