"""Epoch-stepped engine agrees with the scalar DES within tolerance.

Unlike the analytic kernels (exact equality, ``test_kernels.py``), the
epoch engine approximates per-op mechanisms at epoch granularity, so its
contract is the cross-check tolerance band with the scalar engine as the
oracle — the same bands the analytic model is held to against the
engine. The grouped sub-line read regression pins the MLP fixed point:
before the epoch cap (``epoch <= 2 * mlp_budget``) the retirement
constraint failed to converge on long runs and the error cascaded past
45% as volume grew.
"""

import pytest

from repro.memsim import eval_context, paper_config
from repro.memsim.crosscheck import DEFAULT_ANCHORS
from repro.memsim.engine import EngineConfig, simulate
from repro.memsim.kernels import run_epochs
from repro.memsim.spec import Layout, Op, Pattern
from repro.units import MIB


def anchor_engine_config(anchor) -> EngineConfig:
    """Mirror :func:`repro.memsim.crosscheck.cross_check` trace sizing."""
    total = max(2 * MIB, anchor.threads * anchor.access_size * 16)
    return EngineConfig(
        op=anchor.op,
        threads=anchor.threads,
        access_size=anchor.access_size,
        layout=anchor.layout,
        pattern=anchor.pattern,
        total_bytes=total,
        region_bytes=256 * MIB if anchor.pattern is Pattern.RANDOM else None,
    )


class TestAnchorAgreement:
    @pytest.mark.parametrize(
        "anchor", DEFAULT_ANCHORS, ids=[a.label for a in DEFAULT_ANCHORS]
    )
    def test_epoch_within_anchor_tolerance_of_scalar(self, anchor):
        context = eval_context(paper_config())
        config = anchor_engine_config(anchor)
        scalar = simulate(config, context=context).gbps
        epoch = run_epochs(config, context=context).gbps
        error = abs(epoch - scalar) / scalar
        assert error <= anchor.tolerance, (
            f"{anchor.label}: scalar={scalar:.3f} epoch={epoch:.3f} "
            f"err={error * 100:.1f}% tol={anchor.tolerance * 100:.0f}%"
        )

    def test_most_anchors_agree_tightly(self):
        # The wide bands exist for the documented sub-line divergence;
        # the bulk of the anchor set must agree far tighter than that,
        # or the fast path has quietly degraded.
        context = eval_context(paper_config())
        errors = []
        for anchor in DEFAULT_ANCHORS:
            config = anchor_engine_config(anchor)
            scalar = simulate(config, context=context).gbps
            epoch = run_epochs(config, context=context).gbps
            errors.append(abs(epoch - scalar) / scalar)
        tight = sum(1 for e in errors if e <= 0.10)
        assert tight >= len(DEFAULT_ANCHORS) - 2, [f"{e:.3f}" for e in errors]


class TestMlpFixedPointRegression:
    @pytest.mark.parametrize("volume_mib", [1, 4])
    def test_grouped_subline_reads_converge_at_any_volume(self, volume_mib):
        # Regression: the MLP retirement fixed point must converge per
        # epoch, so the error cannot grow with trace length.
        context = eval_context(paper_config())
        config = EngineConfig(
            op=Op.READ,
            threads=18,
            access_size=64,
            layout=Layout.GROUPED,
            total_bytes=volume_mib * MIB,
        )
        scalar = simulate(config, context=context).gbps
        epoch = run_epochs(config, context=context).gbps
        assert abs(epoch - scalar) / scalar <= 0.01


class TestDeterminism:
    def test_epoch_replay_is_bit_identical_across_runs(self):
        context = eval_context(paper_config())
        config = EngineConfig(
            op=Op.READ, threads=18, access_size=64, total_bytes=1 * MIB
        )
        first = run_epochs(config, context=context)
        second = run_epochs(config, context=context)
        assert first.gbps.hex() == second.gbps.hex()
