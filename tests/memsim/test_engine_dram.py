"""DES on DRAM: the contrast device must behave like DRAM in the replay."""

import pytest

from repro.memsim import MediaKind
from repro.memsim.engine import EngineConfig, simulate
from repro.memsim.spec import Layout, Op
from repro.units import MIB


class TestDramReplay:
    def test_read_peak(self):
        result = simulate(
            EngineConfig(
                op=Op.READ, threads=18, access_size=4096,
                media=MediaKind.DRAM, total_bytes=32 * MIB,
            )
        )
        assert result.gbps == pytest.approx(100.0, rel=0.1)

    def test_writes_do_not_boomerang(self):
        # DRAM has no write-combining collapse: 18 threads keep scaling.
        b4 = simulate(
            EngineConfig(op=Op.WRITE, threads=4, access_size=4096,
                         media=MediaKind.DRAM, total_bytes=16 * MIB)
        ).gbps
        b18 = simulate(
            EngineConfig(op=Op.WRITE, threads=18, access_size=4096,
                         media=MediaKind.DRAM, total_bytes=32 * MIB)
        ).gbps
        assert b18 >= b4

    def test_no_write_amplification(self):
        result = simulate(
            EngineConfig(op=Op.WRITE, threads=18, access_size=4096,
                         media=MediaKind.DRAM, total_bytes=16 * MIB)
        )
        assert result.amplification == pytest.approx(1.0)

    def test_pmem_slower_than_dram_in_replay(self):
        def run(media):
            return simulate(
                EngineConfig(op=Op.READ, threads=18, access_size=4096,
                             media=media, total_bytes=16 * MIB)
            ).gbps

        assert run(MediaKind.PMEM) < run(MediaKind.DRAM)

    def test_ssd_media_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            simulate(
                EngineConfig(op=Op.READ, threads=1, access_size=4096,
                             media=MediaKind.SSD, total_bytes=1 * MIB)
            )
