"""Tests for the VTune-substitute performance counters."""

import pytest

from repro.memsim.counters import PerfCounters


class TestAmplification:
    def test_defaults_to_one(self):
        counters = PerfCounters()
        assert counters.read_amplification == 1.0
        assert counters.write_amplification == 1.0

    def test_read_amplification(self):
        counters = PerfCounters(app_bytes_read=100.0, media_bytes_read=400.0)
        assert counters.read_amplification == pytest.approx(4.0)

    def test_write_amplification(self):
        counters = PerfCounters(app_bytes_written=10.0, media_bytes_written=100.0)
        assert counters.write_amplification == pytest.approx(10.0)


class TestMerge:
    def test_bytes_add(self):
        a = PerfCounters(app_bytes_read=10, upi_bytes=5)
        b = PerfCounters(app_bytes_read=20, upi_bytes=1)
        merged = a.merge(b)
        assert merged.app_bytes_read == 30
        assert merged.upi_bytes == 6

    def test_peaks_take_max(self):
        a = PerfCounters(upi_utilization=0.4, rpq_occupancy=0.9)
        b = PerfCounters(upi_utilization=0.9, rpq_occupancy=0.1)
        merged = a.merge(b)
        assert merged.upi_utilization == 0.9
        assert merged.rpq_occupancy == 0.9

    def test_notes_concatenate(self):
        a = PerfCounters()
        a.note("first")
        b = PerfCounters()
        b.note("second")
        merged = a.merge(b)
        assert merged.notes == ["first", "second"]

    def test_merge_does_not_mutate_inputs(self):
        a = PerfCounters(app_bytes_read=10)
        b = PerfCounters(app_bytes_read=20)
        a.merge(b)
        assert a.app_bytes_read == 10
        assert b.app_bytes_read == 20
