"""Tests for the PMEM endurance model."""

import pytest

from repro.errors import ConfigurationError
from repro.memsim import BandwidthModel, Op, PinningPolicy, StreamSpec
from repro.memsim.counters import PerfCounters
from repro.memsim.wear import (
    DIMM_ENDURANCE_BYTES,
    WearEstimate,
    wear_from_counters,
)


class TestWearEstimate:
    def test_media_rate_includes_amplification(self):
        wear = WearEstimate(app_write_gbps=5.0, write_amplification=2.0)
        assert wear.media_write_gbps == 10.0

    def test_lifetime_scales_inversely_with_rate(self):
        slow = WearEstimate(app_write_gbps=1.0, write_amplification=1.0)
        fast = WearEstimate(app_write_gbps=10.0, write_amplification=1.0)
        assert slow.lifetime_years == pytest.approx(10 * fast.lifetime_years)

    def test_idle_device_lives_forever(self):
        wear = WearEstimate(app_write_gbps=0.0, write_amplification=1.0)
        assert wear.lifetime_years == float("inf")
        assert wear.within_warranty

    def test_sustained_peak_writes_approach_the_warranty_limit(self):
        # Writing at the full 13.2 GB/s around the clock exhausts the six
        # DIMMs' pooled endurance in ~4.2 years — just under the 5-year
        # warranty; any realistic duty cycle is safe.
        peak = WearEstimate(app_write_gbps=13.2, write_amplification=1.0)
        assert 3.5 < peak.lifetime_years < 5.0
        half_duty = WearEstimate(app_write_gbps=6.6, write_amplification=1.0)
        assert half_duty.within_warranty

    def test_far_write_amplification_destroys_lifetime(self):
        good = WearEstimate(app_write_gbps=5.0, write_amplification=1.0)
        bad = WearEstimate(app_write_gbps=5.0, write_amplification=10.0)
        assert bad.lifetime_years == pytest.approx(good.lifetime_years / 10)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WearEstimate(app_write_gbps=-1.0, write_amplification=1.0)
        with pytest.raises(ConfigurationError):
            WearEstimate(app_write_gbps=1.0, write_amplification=0.5)

    def test_describe(self):
        text = WearEstimate(app_write_gbps=5.0, write_amplification=2.0).describe()
        assert "GB/s media" in text
        assert "years" in text


class TestFromCounters:
    def test_uses_counter_amplification(self):
        counters = PerfCounters(
            app_bytes_written=100e9, media_bytes_written=400e9
        )
        wear = wear_from_counters(counters, elapsed_seconds=10.0)
        assert wear.app_write_gbps == pytest.approx(10.0)
        assert wear.write_amplification == pytest.approx(4.0)

    def test_integration_with_simulation(self):
        # Far writes at high thread counts carry the §4.4 amplification,
        # which shows up directly in the endurance estimate.
        model = BandwidthModel()
        model.warm_directory()
        near = model.evaluate(
            [StreamSpec(op=Op.WRITE, threads=4, pinning=PinningPolicy.NUMA_REGION)]
        )
        far = model.evaluate(
            [
                StreamSpec(
                    op=Op.WRITE, threads=18, pinning=PinningPolicy.NUMA_REGION,
                    issuing_socket=0, target_socket=1,
                )
            ]
        )
        near_wear = wear_from_counters(near.counters, elapsed_seconds=100.0)
        far_wear = wear_from_counters(far.counters, elapsed_seconds=100.0)
        assert far_wear.write_amplification > 5 * near_wear.write_amplification
        assert far_wear.lifetime_years < near_wear.lifetime_years

    def test_invalid_elapsed(self):
        with pytest.raises(ConfigurationError):
            wear_from_counters(PerfCounters(), elapsed_seconds=0.0)

    def test_endurance_constant_sane(self):
        # 292 PB over 5 years ~= 1.85 GB/s of sustained media writes.
        sustained = DIMM_ENDURANCE_BYTES / (5 * 365 * 24 * 3600) / 1e9
        assert 1.0 < sustained < 3.0
