"""Tests for the write-combining and read-buffer models."""

import pytest

from repro.errors import WorkloadError
from repro.memsim.buffers import ReadBufferModel, WriteCombiningModel
from repro.memsim.calibration import paper_calibration


@pytest.fixture(scope="module")
def pmem():
    return paper_calibration().pmem


@pytest.fixture(scope="module")
def wc(pmem):
    return WriteCombiningModel(pmem)


@pytest.fixture(scope="module")
def rb(pmem):
    return ReadBufferModel(pmem)


class TestWriteCombiningEfficiency:
    def test_safe_thread_counts_are_ideal(self, wc):
        # Fig. 8: 4-6 threads hold peak bandwidth out to 32 MB accesses.
        for size in (4096, 65536, 32 * 1024 * 1024):
            assert wc.efficiency(4, size) == 1.0
            assert wc.efficiency(6, size) == 1.0

    def test_small_accesses_are_safe_at_any_thread_count(self, wc):
        # The 256 B secondary peak: 18+ threads keep combining for small
        # strictly-sequential writes.
        for threads in (8, 18, 36):
            assert wc.efficiency(threads, 256) == 1.0

    def test_boomerang_needs_both_axes(self, wc):
        # Scaling only threads (small size) or only size (few threads)
        # preserves efficiency; scaling both collapses it.
        assert wc.efficiency(36, 256) == 1.0
        assert wc.efficiency(4, 1 << 25) == 1.0
        assert wc.efficiency(36, 1 << 25) < 0.5

    def test_efficiency_monotone_in_threads(self, wc):
        effs = [wc.efficiency(t, 16384) for t in (6, 8, 12, 18, 24, 36)]
        assert all(a >= b for a, b in zip(effs, effs[1:]))

    def test_efficiency_monotone_in_size(self, wc):
        effs = [wc.efficiency(18, s) for s in (1024, 4096, 16384, 65536)]
        assert all(a >= b for a, b in zip(effs, effs[1:]))

    def test_floor_holds(self, wc, pmem):
        # Large-access high-thread writes stabilise around 5-6 GB/s
        # (§4.2) => efficiency floors at wc_floor, never at zero.
        assert wc.efficiency(36, 1 << 30) == pytest.approx(pmem.wc_floor)

    def test_disabled_combining_degrades_to_cacheline_rmw(self, pmem):
        off = WriteCombiningModel(pmem, enabled=False)
        assert off.efficiency(1, 4096) == pytest.approx(64 / 256)

    def test_invalid_inputs(self, wc):
        with pytest.raises(WorkloadError):
            wc.efficiency(0, 4096)
        with pytest.raises(WorkloadError):
            wc.efficiency(4, 0)


class TestGroupedSmallWrites:
    def test_full_line_writes_unpenalised(self, wc):
        assert wc.grouped_small_write_factor(256) == 1.0
        assert wc.grouped_small_write_factor(4096) == 1.0

    def test_sub_line_grouped_writes_penalised(self, wc):
        assert wc.grouped_small_write_factor(64) < 0.5

    def test_partial_cross_thread_combining_floor(self, wc):
        # 64 B grouped achieves ~27% of the individual bandwidth — more
        # than the naive 64/256, because some cross-thread combining works.
        assert wc.grouped_small_write_factor(64) >= 0.45


class TestWriteAmplification:
    def test_ideal_case_has_no_amplification(self, wc):
        assert wc.write_amplification(4, 4096, grouped=False) == pytest.approx(1.0)

    def test_pressure_amplifies(self, wc):
        assert wc.write_amplification(18, 16384, grouped=False) > 1.5

    def test_grouped_sub_line_amplifies_by_rmw(self, wc):
        # A 64 B grouped store still moves a 256 B media line.
        assert wc.write_amplification(1, 64, grouped=True) == pytest.approx(4.0)


class TestReadBuffer:
    def test_sequential_reads_never_amplify(self, rb):
        # §3.1: consecutive sub-line reads are served from the buffered
        # 256 B line.
        for size in (64, 128, 256, 4096):
            assert rb.sequential_amplification(size) == 1.0

    def test_random_sub_line_reads_amplify(self, rb):
        assert rb.random_amplification(64) == pytest.approx(4.0)
        assert rb.random_amplification(128) == pytest.approx(2.0)

    def test_random_line_sized_reads_do_not_amplify(self, rb):
        assert rb.random_amplification(256) == 1.0
        assert rb.random_amplification(4096) == 1.0

    def test_invalid_size(self, rb):
        with pytest.raises(WorkloadError):
            rb.random_amplification(0)
