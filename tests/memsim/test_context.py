"""EvalContext: derived tables match inline derivation, bit for bit."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.memsim import (
    DirectoryState,
    EvalContext,
    MachineConfig,
    MediaKind,
    Op,
    StreamSpec,
    eval_context,
    evaluate,
    paper_config,
)
from repro.memsim.context import _build_context, components
from repro.memsim.engine.simulator import DiscreteEventEngine, EngineConfig
from repro.memsim.scheduler import PinningPolicy
from repro.memsim.spec import Pattern

SPECS = (
    StreamSpec(op=Op.READ, threads=18, access_size=4096),
    StreamSpec(op=Op.WRITE, threads=6, access_size=16384,
               pinning=PinningPolicy.NUMA_REGION),
    StreamSpec(op=Op.READ, threads=8, access_size=4096,
               issuing_socket=0, target_socket=1),
    StreamSpec(op=Op.READ, threads=16, access_size=256, pattern=Pattern.RANDOM),
    StreamSpec(op=Op.WRITE, threads=4, access_size=64, pattern=Pattern.RANDOM,
               media=MediaKind.DRAM),
)


class TestDerivation:
    def test_cached_per_config(self):
        config = paper_config()
        assert eval_context(config) is eval_context(config)

    def test_distinct_configs_get_distinct_contexts(self):
        base = eval_context(paper_config())
        other = eval_context(MachineConfig(prefetcher_enabled=False))
        assert base is not other
        assert base.components is not other.components

    def test_tables_cover_every_socket_and_media(self):
        context = eval_context(paper_config())
        topology = context.config.topology
        for socket in topology.sockets:
            assert socket.socket_id in context.socket_ids
            for media in MediaKind:
                key = (socket.socket_id, media)
                ways = context.interleave_ways[key]
                assert ways == topology.interleave_ways(socket.socket_id, media)
                if ways == 0:
                    assert context.interleave_maps[key] is None
                else:
                    assert context.interleave_maps[key] is not None

    def test_mappings_are_read_only(self):
        context = eval_context(paper_config())
        with pytest.raises(TypeError):
            context.interleave_ways[(0, MediaKind.PMEM)] = 99

    def test_components_shared_with_component_cache(self):
        config = paper_config()
        assert eval_context(config).components is components(config)

    def test_require_socket_matches_topology_error(self):
        context = eval_context(paper_config())
        with pytest.raises(TopologyError, match="no such socket: 9"):
            context.require_socket(9)


class TestEvaluateWithContext:
    def test_explicit_context_is_bit_identical(self):
        config = paper_config()
        context = eval_context(config)
        for spec in SPECS:
            for state in (DirectoryState.cold(), DirectoryState.warm(config.topology)):
                implicit = evaluate(config, (spec,), state)
                explicit = evaluate(config, (spec,), state, context=context)
                assert implicit.counters == explicit.counters
                assert implicit.directory_after == explicit.directory_after
                assert [s.gbps for s in implicit.streams] == [
                    s.gbps for s in explicit.streams
                ]

    def test_freshly_built_context_is_equivalent(self):
        config = paper_config()
        rebuilt = _build_context(config)
        spec = SPECS[0]
        assert (
            evaluate(config, (spec,), context=rebuilt).counters
            == evaluate(config, (spec,)).counters
        )

    def test_mismatched_context_rejected(self):
        other = eval_context(MachineConfig(prefetcher_enabled=False))
        with pytest.raises(ConfigurationError, match="different MachineConfig"):
            evaluate(paper_config(), (SPECS[0],), context=other)

    def test_equal_config_different_instance_accepted(self):
        config = paper_config()
        clone = MachineConfig()
        assert clone == config and clone is not config
        context = eval_context(config)
        result = evaluate(clone, (SPECS[0],), context=context)
        assert result.total_gbps > 0


class TestEngineWithContext:
    def test_engine_accepts_context(self):
        config = paper_config()
        context = eval_context(config)
        engine_config = EngineConfig(op=Op.READ, threads=18, access_size=4096)
        plain = DiscreteEventEngine().run(engine_config)
        contextual = DiscreteEventEngine(context=context).run(engine_config)
        assert plain.gbps == contextual.gbps

    def test_engine_rejects_context_plus_explicit_parts(self):
        config = paper_config()
        with pytest.raises(ConfigurationError, match="not both"):
            DiscreteEventEngine(
                topology=config.topology, context=eval_context(config)
            )
