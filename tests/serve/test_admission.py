"""Backpressure: the queue bound, retry-after hints, and deadlines.

Everything runs on the fake clock with ``WINDOW = 1.0``, so the
schedule is fully deterministic and the ``serve.*`` counters can be
asserted to exact values, not ranges.
"""

import asyncio

from tests.serve.conftest import run_async
from tests.serve.test_server import WINDOW, evaluate_frame, make_server


class TestQueueBound:
    def test_burst_beyond_queue_depth_sheds_the_excess(self, fake_clock):
        async def scenario():
            server, recorder = make_server(fake_clock, max_queue_depth=4)
            tasks = [
                asyncio.ensure_future(server.submit(evaluate_frame(i, 1 + i)))
                for i in range(10)
            ]
            await fake_clock.drain()
            # Shed responses resolve immediately, before any window
            # elapses — the caller learns to back off without waiting.
            shed_now = [task for task in tasks if task.done()]
            assert len(shed_now) == 6
            await fake_clock.advance(WINDOW)
            responses = [await task for task in tasks]
            await server.close()
            return server, recorder, responses

        server, recorder, responses = run_async(scenario())
        admitted = [r for r in responses if r["ok"]]
        shed = [r for r in responses if not r["ok"]]
        # First four in, the rest turned away; submission order decides.
        assert [r["id"] for r in admitted] == [0, 1, 2, 3]
        assert len(shed) == 6
        for response in shed:
            assert response["error"]["code"] == "shed"
            # Default retry hint: two gather windows.
            assert response["error"]["retry_after_seconds"] == 2 * WINDOW

        assert server.stats.admitted == 4
        assert server.stats.completed == 4
        assert server.stats.shed == 6
        assert server.stats.batches == 1
        assert server.stats.max_queue_depth == 4

        assert recorder.counters["serve.requests_count"] == 10
        assert recorder.counters["serve.shed_count"] == 6
        assert recorder.counters["serve.coalesce.batches_count"] == 1
        depth = recorder.histograms["serve.queue.depth_count"]
        # One sample per admission: depths 1, 2, 3, 4.
        assert (depth.count, depth.minimum, depth.maximum) == (4, 1.0, 4.0)
        assert depth.total == 10.0
        sizes = recorder.histograms["serve.coalesce.batch_size_count"]
        assert (sizes.count, sizes.maximum) == (1, 4.0)
        latency = recorder.histograms["serve.latency.wall_seconds"]
        # All four admitted at t=0, answered by the t=1 batch.
        assert (latency.count, latency.minimum, latency.maximum) == (4, WINDOW, WINDOW)

    def test_queue_drains_and_readmits_after_a_window(self, fake_clock):
        async def scenario():
            server, _ = make_server(fake_clock, max_queue_depth=2)
            first = [
                asyncio.ensure_future(server.submit(evaluate_frame(i, 2 + i)))
                for i in range(3)
            ]
            await fake_clock.drain()
            await fake_clock.advance(WINDOW)
            first_responses = [await task for task in first]
            # The batch drained the queue: the same pressure now fits.
            retry = asyncio.ensure_future(server.submit(evaluate_frame(9, 6)))
            await fake_clock.drain()
            await fake_clock.advance(WINDOW)
            retry_response = await retry
            await server.close()
            return server, first_responses, retry_response

        server, first_responses, retry_response = run_async(scenario())
        assert [r["ok"] for r in first_responses] == [True, True, False]
        assert retry_response["ok"]
        assert server.stats.shed == 1
        assert server.stats.admitted == 3

    def test_oversized_sweep_is_shed_whole(self, fake_clock):
        async def scenario():
            server, _ = make_server(fake_clock, max_queue_depth=4)
            response = await server.submit({
                "kind": "sweep", "id": "big",
                "points": [[{"op": "read", "threads": t}] for t in range(1, 9)],
            })
            await server.close()
            return server, response

        server, response = run_async(scenario())
        assert not response["ok"]
        assert response["error"]["code"] == "shed"
        assert response["error"]["retry_after_seconds"] == 2 * WINDOW
        assert server.stats.shed == 8  # counted in points, like admission


class TestDeadlines:
    def test_expired_deadline_is_answered_not_evaluated(self, fake_clock):
        async def scenario():
            server, recorder = make_server(fake_clock)
            hurried = asyncio.ensure_future(server.submit(
                evaluate_frame("hurried", 2, deadline_seconds=0.5)
            ))
            patient = asyncio.ensure_future(server.submit(
                evaluate_frame("patient", 4, deadline_seconds=2.0)
            ))
            await fake_clock.drain()
            await fake_clock.advance(WINDOW)
            responses = (await hurried, await patient)
            await server.close()
            return server, recorder, responses

        server, recorder, (hurried, patient) = run_async(scenario())
        # The 0.5 s deadline passed while waiting out the 1 s window.
        assert not hurried["ok"]
        assert hurried["error"]["code"] == "deadline"
        assert patient["ok"]
        assert server.stats.deadline_expired == 1
        assert server.stats.completed == 1
        assert recorder.counters["serve.deadline.expired_count"] == 1
        # The expired request never reached the evaluator.
        assert recorder.counters["sweep.cache.misses_count"] == 1
        sizes = recorder.histograms["serve.coalesce.batch_size_count"]
        assert (sizes.count, sizes.maximum) == (1, 1.0)
