"""Wire-protocol codec: decode validation and byte-exact encodings."""

import json

import pytest

from repro.errors import ServeError
from repro.memsim.config import DirectoryState, paper_config
from repro.memsim.spec import MediaKind, Op, Pattern, StreamSpec, read_stream
from repro.serve import protocol
from repro.sweep.service import EvaluationService


def decode(frame):
    return protocol.decode_request(frame)


class TestDecode:
    def test_ping(self):
        request = decode({"kind": "ping", "id": 7})
        assert request.kind == "ping"
        assert request.id == 7

    def test_evaluate_defaults(self):
        request = decode(
            {"kind": "evaluate", "streams": [{"op": "read", "threads": 4}]}
        )
        assert request.kind == "evaluate"
        assert request.streams == (read_stream(4),)
        assert request.config is paper_config()
        assert request.directory == DirectoryState.cold()
        assert request.deadline_seconds is None
        assert not request.include_counters

    def test_evaluate_full_frame(self):
        request = decode({
            "kind": "evaluate",
            "id": "q1",
            "streams": [{
                "op": "write", "threads": 8, "access_size": 256,
                "media": "dram", "pattern": "random", "layout": "grouped",
                "pinning": "none", "issuing_socket": 1, "target_socket": 0,
                "dax_mode": "fsdax", "prefaulted": True,
            }],
            "warm_pairs": [[0, 1], [1, 0]],
            "deadline_seconds": 2.5,
            "counters": True,
            "prefetcher": False,
        })
        spec = request.streams[0]
        assert spec.op is Op.WRITE
        assert spec.media is MediaKind.DRAM
        assert spec.pattern is Pattern.RANDOM
        assert request.directory.warm_pairs == frozenset({(0, 1), (1, 0)})
        assert request.deadline_seconds == 2.5
        assert request.include_counters
        assert not request.config.prefetcher_enabled
        # The ablation config is identity-cached per toggle pair.
        again = decode({
            "kind": "evaluate", "prefetcher": False,
            "streams": [{"op": "read", "threads": 1}],
        })
        assert again.config is request.config

    def test_sweep_points(self):
        request = decode({
            "kind": "sweep",
            "points": [
                [{"op": "read", "threads": 2}],
                [{"op": "read", "threads": 4}, {"op": "write", "threads": 2}],
            ],
        })
        assert request.kind == "sweep"
        assert len(request.points) == 2
        assert len(request.points[1]) == 2

    def test_advise(self):
        request = decode({
            "kind": "advise",
            "intent": {"profile": "scan_heavy", "threads_per_socket": 18},
        })
        assert request.intent.threads_per_socket == 18

    @pytest.mark.parametrize("frame,fragment", [
        ({"kind": "teleport"}, "unknown kind"),
        ({"kind": "evaluate"}, "streams"),
        ({"kind": "evaluate", "streams": []}, "non-empty"),
        ({"kind": "evaluate", "streams": [{"op": "levitate", "threads": 1}]},
         "bad 'op'"),
        ({"kind": "evaluate", "streams": [{"op": "read", "threads": 0}]},
         "invalid stream"),
        ({"kind": "evaluate", "streams": [{"op": "read", "threads": 1,
                                           "warp": 9}]}, "unknown stream field"),
        ({"kind": "evaluate", "streams": [{"op": "read", "threads": 1}],
          "warm_pairs": [[0]]}, "warm pair"),
        ({"kind": "evaluate", "streams": [{"op": "read", "threads": 1}],
          "deadline_seconds": -1}, "deadline_seconds"),
        ({"kind": "sweep", "points": []}, "points"),
        ({"kind": "advise", "intent": {"profile": "chaotic"}}, "bad profile"),
        ({"kind": "advise", "intent": {"profile": "mixed", "sockets": 0}},
         "invalid intent"),
    ])
    def test_bad_frames_raise_bad_request(self, frame, fragment):
        with pytest.raises(ServeError) as excinfo:
            decode(frame)
        assert excinfo.value.code == "bad_request"
        assert fragment in str(excinfo.value)

    def test_stream_wire_round_trip(self):
        spec = StreamSpec(op=Op.WRITE, threads=6, access_size=512,
                          pattern=Pattern.RANDOM)
        assert protocol.decode_stream(protocol.encode_stream(spec)) == spec


class TestEncode:
    def test_point_encoding_matches_view_encoding_exactly(self):
        service = EvaluationService(disk_cache=None)
        config = paper_config()
        points = [
            (read_stream(4),),
            (read_stream(8, issuing_socket=0, target_socket=1),),
            (read_stream(2), StreamSpec(op=Op.WRITE, threads=2)),
        ]
        columns = service.evaluate_grid_columns(config, points)
        for include in (False, True):
            for row in range(len(points)):
                columnar = protocol.encode_point(
                    columns, row, include_counters=include
                )
                via_view = protocol.encode_result(
                    columns.view(row), include_counters=include
                )
                assert protocol.dump_line(columnar) == protocol.dump_line(via_view)

    def test_result_payload_shape(self):
        service = EvaluationService(disk_cache=None)
        result = service.evaluate(paper_config(), (read_stream(4),))
        payload = protocol.encode_result(result, include_counters=True)
        assert payload["total_gbps"] == result.total_gbps
        assert payload["streams"][0]["gbps"] == result.streams[0].gbps
        assert payload["counters"]["app_bytes_read"] > 0
        assert payload["warm_pairs"] == []

    def test_error_response_carries_code_and_retry(self):
        shed = ServeError("shed", "queue full", retry_after_seconds=0.004)
        response = protocol.error_response(3, shed)
        assert response == {
            "id": 3,
            "ok": False,
            "error": {"code": "shed", "message": "queue full",
                      "retry_after_seconds": 0.004},
        }
        plain = protocol.error_response(None, ValueError("boom"))
        assert plain["error"]["code"] == "evaluation"
        assert "retry_after_seconds" not in plain["error"]

    def test_dump_line_is_compact_newline_terminated(self):
        line = protocol.dump_line({"id": 1, "ok": True})
        assert line.endswith(b"\n")
        assert b" " not in line
        assert json.loads(line) == {"id": 1, "ok": True}
