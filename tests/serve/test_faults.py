"""Fault injection: every failure is deterministic and request-scoped.

All timing runs on the :class:`~tests.serve.conftest.FakeClock` — gather
windows and the frame timeout elapse via ``advance``, never a real
sleep. TCP tests use real localhost sockets but poll loop iterations
(not wall time) for readiness.
"""

import asyncio

from repro.memsim.config import paper_config
from repro.memsim.spec import read_stream
from repro.serve import ServeConfig, protocol
from repro.sweep.service import EvaluationService

from tests.serve.conftest import run_async
from tests.serve.test_server import WINDOW, evaluate_frame, make_server

#: A stream that decodes fine but blows up in evaluation: the paper
#: topology has two sockets, so socket 7 raises ``TopologyError``.
POISON_STREAMS = [{"op": "read", "threads": 2, "issuing_socket": 7,
                   "target_socket": 7}]


async def until(predicate, limit: int = 10_000):
    """Spin loop iterations (zero wall time) until ``predicate()``."""
    for _ in range(limit):
        if predicate():
            return
        await asyncio.sleep(0)
    raise AssertionError("condition never became true")


class TestPoisonedBatch:
    def test_poisoned_point_fails_only_its_own_request(self, fake_clock):
        async def scenario():
            server, recorder = make_server(fake_clock)
            frames = [
                evaluate_frame("good-a", 2),
                {"kind": "evaluate", "id": "bad", "streams": POISON_STREAMS},
                evaluate_frame("good-b", 4),
            ]
            tasks = [asyncio.ensure_future(server.submit(f)) for f in frames]
            await fake_clock.drain()
            await fake_clock.advance(WINDOW)
            responses = [await task for task in tasks]
            await server.close()
            return server, responses

        server, responses = run_async(scenario())
        good_a, bad, good_b = responses
        # The poisoned request gets a typed error with GridPointError
        # attribution: the serving grid name and the request id as label.
        assert not bad["ok"]
        assert bad["error"]["code"] == "evaluation"
        assert "serve.batch" in bad["error"]["message"]
        assert "'bad'" in bad["error"]["message"]
        assert "socket" in bad["error"]["message"]
        # Batch-mates are still answered, bit-identical to serial runs.
        serial = EvaluationService(disk_cache=None)
        for threads, response in ((2, good_a), (4, good_b)):
            assert response["ok"]
            expected = protocol.encode_result(
                serial.evaluate(paper_config(), (read_stream(threads),))
            )
            assert response["result"] == expected
        assert server.stats.errors == 1
        assert server.stats.completed == 2

    def test_poisoned_point_in_a_sweep_names_the_point(self, fake_clock):
        async def scenario():
            server, _ = make_server(fake_clock)
            response = await server.submit({
                "kind": "sweep", "id": "grid",
                "points": [[{"op": "read", "threads": 2}], POISON_STREAMS],
            })
            await server.close()
            return response

        response = run_async(scenario())
        assert not response["ok"]
        assert response["error"]["code"] == "evaluation"
        assert "grid[1]" in response["error"]["message"]

    def test_mid_window_cancellation_spares_batch_mates(self, fake_clock):
        """An in-process caller vanishing (task cancelled) mid-window."""
        async def scenario():
            server, _ = make_server(fake_clock)
            doomed = asyncio.ensure_future(server.submit(evaluate_frame(1, 2)))
            survivor = asyncio.ensure_future(server.submit(evaluate_frame(2, 4)))
            await fake_clock.drain()
            doomed.cancel()
            await fake_clock.advance(WINDOW)
            response = await survivor
            await server.close()
            return server, response

        server, response = run_async(scenario())
        assert response["ok"]
        assert server.stats.completed == 1


class TestMalformedFrames:
    def test_non_json_and_non_object_frames(self, fake_clock):
        async def scenario():
            server, _ = make_server(fake_clock)
            garbage = await server.submit(b"{not json\n")
            string = await server.submit(b'"a bare string"\n')
            number = await server.submit({"kind": 42})
            await server.close()
            return garbage, string, number

        garbage, string, number = run_async(scenario())
        for response in (garbage, string, number):
            assert not response["ok"]
            assert response["error"]["code"] == "bad_request"
        assert "not JSON" in garbage["error"]["message"]
        assert "JSON object" in string["error"]["message"]
        assert "unknown kind" in number["error"]["message"]

    def test_bad_frames_never_touch_admission_or_error_tallies(self, fake_clock):
        async def scenario():
            server, recorder = make_server(fake_clock)
            await server.submit(b"\x00garbage\n")
            await server.close()
            return server

        server = run_async(scenario())
        assert server.stats.admitted == 0
        # bad_request is the caller's failure, not an evaluation error.
        assert server.stats.errors == 0


class TestConnectionFaults:
    def test_client_disconnect_mid_request_spares_the_server(self, fake_clock):
        async def scenario():
            server, _ = make_server(fake_clock)
            host, port = await server.serve_tcp()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(protocol.dump_line(evaluate_frame("gone", 2)))
            await writer.drain()
            # Wait (loop iterations, no wall time) for admission, then
            # vanish before the answer exists.
            await until(lambda: server.stats.admitted == 1)
            writer.close()
            await fake_clock.advance(WINDOW)
            # The dead client's request was abandoned, not evaluated:
            # its in-flight task is cancelled with the connection and
            # the batch skips the cancelled future.
            assert server.stats.completed == 0
            assert server.stats.batches == 0
            reader2, writer2 = await asyncio.open_connection(host, port)
            writer2.write(protocol.dump_line(evaluate_frame("alive", 2)))
            await writer2.drain()
            respond = asyncio.ensure_future(reader2.readline())
            await until(lambda: server.stats.admitted == 2)
            await fake_clock.advance(WINDOW)
            line = await respond
            writer2.close()
            await server.close()
            return server, line

        server, line = run_async(scenario())
        response = protocol.json.loads(line)
        assert response["id"] == "alive"
        assert response["ok"]
        assert server.stats.completed == 1

    def test_slow_loris_partial_frame_times_out(self, fake_clock):
        async def scenario():
            server, _ = make_server(fake_clock, frame_timeout_seconds=30.0)
            host, port = await server.serve_tcp()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"kind": "eval')  # no newline, ever
            await writer.drain()
            # Wait until the server armed the frame timer, then jump
            # past the timeout on the fake clock.
            await until(lambda: fake_clock.sleeping >= 1)
            await fake_clock.advance(30.0)
            line = await reader.readline()
            eof = await reader.readline()
            writer.close()
            await server.close()
            return server, line, eof

        server, line, eof = run_async(scenario())
        response = protocol.json.loads(line)
        assert not response["ok"]
        assert response["error"]["code"] == "protocol"
        assert "30" in response["error"]["message"]
        assert eof == b""  # server hung up after answering
        assert server.stats.protocol_drops == 1

    def test_oversize_frame_is_a_protocol_violation(self, fake_clock):
        async def scenario():
            server, _ = make_server(fake_clock, max_frame_bytes=1024)
            host, port = await server.serve_tcp()
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b"x" * 4096 + b"\n")
            await writer.drain()
            line = await reader.readline()
            eof = await reader.readline()
            writer.close()
            await server.close()
            return server, line, eof

        server, line, eof = run_async(scenario())
        response = protocol.json.loads(line)
        assert not response["ok"]
        assert response["error"]["code"] == "protocol"
        assert "1024" in response["error"]["message"]
        assert eof == b""
        assert server.stats.protocol_drops == 1
