"""Async test harness for the serving layer: stdlib only, no real sleeps.

Two pieces replace a pytest-asyncio dependency:

* :func:`run_async` — run one test coroutine on a fresh event loop with
  a real-time safety timeout (a deadlocked test fails instead of
  hanging the suite);
* :class:`FakeClock` — a manual clock whose ``time``/``sleep`` pair is
  injected into :class:`~repro.serve.server.BandwidthServer`. Sleepers
  park on futures ordered by deadline; :meth:`FakeClock.advance` fires
  everything due and lets the loop settle, so gather windows, frame
  timeouts, and deadlines elapse deterministically in zero wall time.
"""

from __future__ import annotations

import asyncio
import heapq

import pytest

DEFAULT_TIMEOUT_SECONDS = 30.0


def run_async(coro, timeout: float = DEFAULT_TIMEOUT_SECONDS):
    """Run ``coro`` to completion on a fresh loop (real-time ``timeout``
    seconds as a hang guard)."""
    return asyncio.run(asyncio.wait_for(coro, timeout))


class FakeClock:
    """A manually-advanced clock with an async ``sleep``.

    ``time()`` returns the current fake time in seconds. ``sleep(s)``
    parks the caller on a future that :meth:`advance` resolves once the
    fake time passes its deadline; a cancelled sleeper (the server races
    reads against frame timeouts) is simply dropped.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._sleepers: list[tuple[float, int, asyncio.Future]] = []
        self._seq = 0

    def time(self) -> float:
        """Current fake time in seconds."""
        return self._now

    async def sleep(self, seconds: float) -> None:
        if seconds <= 0:
            await asyncio.sleep(0)
            return
        future = asyncio.get_running_loop().create_future()
        self._seq += 1
        heapq.heappush(self._sleepers, (self._now + seconds, self._seq, future))
        await future

    async def drain(self, rounds: int = 25) -> None:
        """Let every ready callback run (``rounds`` loop iterations)."""
        for _ in range(rounds):
            await asyncio.sleep(0)

    async def advance(self, seconds: float) -> None:
        """Move fake time forward, waking due sleepers in deadline order.

        The loop settles (:meth:`drain`) after each wake so work
        scheduled by one sleeper — say, a batch dispatch that answers
        futures — completes before the next sleeper fires.
        """
        target = self._now + seconds
        while True:
            # Settle first: tasks created just before ``advance`` get a
            # chance to park their sleeps before time moves.
            await self.drain()
            if not self._sleepers or self._sleepers[0][0] > target:
                break
            deadline, _, future = heapq.heappop(self._sleepers)
            self._now = max(self._now, deadline)
            if not future.done():
                future.set_result(None)
        self._now = target
        await self.drain()

    @property
    def sleeping(self) -> int:
        """Live (uncancelled) sleepers currently parked."""
        return sum(1 for _, _, f in self._sleepers if not f.done())


@pytest.fixture
def fake_clock() -> FakeClock:
    return FakeClock()
