"""Server basics: coalescing, dedup, sweep/advise paths, TCP smoke."""

import asyncio

from repro.memsim.config import paper_config
from repro.memsim.spec import read_stream
from repro.obs import CountersRecorder
from repro.serve import BandwidthServer, ServeConfig, protocol
from repro.serve.client import ServeClient, request_once
from repro.sweep.service import EvaluationService

from tests.serve.conftest import FakeClock, run_async

WINDOW = 1.0


def make_server(clock: FakeClock, **overrides):
    """A server on the fake clock with a private service and recorder."""
    recorder = CountersRecorder()
    config = ServeConfig(**{"gather_window_seconds": WINDOW, **overrides})
    server = BandwidthServer(
        EvaluationService(disk_cache=None),
        config=config,
        recorder=recorder,
        clock=clock.time,
        sleep=clock.sleep,
    )
    return server, recorder


def evaluate_frame(request_id, threads, **extra):
    frame = {
        "kind": "evaluate",
        "id": request_id,
        "streams": [{"op": "read", "threads": threads}],
    }
    frame.update(extra)
    return frame


class TestCoalescing:
    def test_window_coalesces_concurrent_requests_into_one_batch(self, fake_clock):
        async def scenario():
            server, recorder = make_server(fake_clock)
            tasks = [
                asyncio.ensure_future(server.submit(evaluate_frame(i, threads)))
                for i, threads in enumerate((2, 4, 8))
            ]
            await fake_clock.drain()
            assert server.stats.admitted == 3
            assert not any(task.done() for task in tasks)
            await fake_clock.advance(WINDOW)
            responses = [await task for task in tasks]
            await server.close()
            return server, recorder, responses

        server, recorder, responses = run_async(scenario())
        assert all(response["ok"] for response in responses)
        assert server.stats.batches == 1
        assert server.stats.coalesced_points == 3
        sizes = recorder.histograms["serve.coalesce.batch_size_count"]
        assert (sizes.count, sizes.maximum) == (1, 3.0)
        # Answers match the serial path bit-for-bit.
        serial = EvaluationService(disk_cache=None)
        for threads, response in zip((2, 4, 8), responses):
            expected = protocol.encode_result(
                serial.evaluate(paper_config(), (read_stream(threads),))
            )
            assert response["result"] == expected

    def test_duplicate_requests_collapse_to_one_evaluation(self, fake_clock):
        async def scenario():
            server, recorder = make_server(fake_clock)
            tasks = [
                asyncio.ensure_future(server.submit(evaluate_frame(i, 4)))
                for i in range(3)
            ]
            await fake_clock.drain()
            await fake_clock.advance(WINDOW)
            responses = [await task for task in tasks]
            await server.close()
            return server, recorder, responses

        server, recorder, responses = run_async(scenario())
        assert server.stats.deduped == 2
        assert recorder.counters["serve.dedup.joined_count"] == 2
        # One miss (the leader); the two followers are memo hits.
        assert recorder.counters["sweep.cache.misses_count"] == 1
        assert recorder.counters["sweep.cache.hits_count"] == 2
        assert responses[0]["result"] == responses[1]["result"]
        assert responses[1]["result"] == responses[2]["result"]

    def test_requests_after_the_window_form_a_new_batch(self, fake_clock):
        async def scenario():
            server, _ = make_server(fake_clock)
            first = asyncio.ensure_future(server.submit(evaluate_frame(1, 2)))
            await fake_clock.drain()
            await fake_clock.advance(WINDOW)
            await first
            second = asyncio.ensure_future(server.submit(evaluate_frame(2, 4)))
            await fake_clock.drain()
            await fake_clock.advance(WINDOW)
            await second
            await server.close()
            return server

        server = run_async(scenario())
        assert server.stats.batches == 2
        assert server.stats.coalesced_points == 0  # two singleton batches


class TestOtherKinds:
    def test_ping_and_advise_answer_without_the_clock(self, fake_clock):
        async def scenario():
            server, _ = make_server(fake_clock)
            ping = await server.submit({"kind": "ping", "id": 1})
            advise = await server.submit({
                "kind": "advise", "id": 2,
                "intent": {"profile": "ingest"},
            })
            await server.close()
            return ping, advise

        ping, advise = run_async(scenario())
        assert ping["result"]["protocol"] == protocol.PROTOCOL
        assert advise["ok"]
        assert advise["result"]["write_threads"] >= 1
        assert advise["result"]["practices"]

    def test_sweep_frame_answers_every_point_in_order(self, fake_clock):
        async def scenario():
            server, _ = make_server(fake_clock)
            response = await server.submit({
                "kind": "sweep", "id": 9,
                "points": [
                    [{"op": "read", "threads": 2}],
                    [{"op": "read", "threads": 4}],
                ],
            })
            await server.close()
            return response

        response = run_async(scenario())
        assert response["ok"]
        points = response["result"]["points"]
        serial = EvaluationService(disk_cache=None)
        for threads, payload in zip((2, 4), points):
            expected = protocol.encode_result(
                serial.evaluate(paper_config(), (read_stream(threads),))
            )
            assert payload == expected

    def test_close_fails_queued_requests_with_shutdown(self, fake_clock):
        async def scenario():
            server, _ = make_server(fake_clock)
            task = asyncio.ensure_future(server.submit(evaluate_frame(1, 2)))
            await fake_clock.drain()
            await server.close()
            response = await task
            late = await server.submit(evaluate_frame(2, 2))
            return response, late

        response, late = run_async(scenario())
        assert not response["ok"]
        assert response["error"]["code"] == "shutdown"
        assert late["error"]["code"] == "shutdown"


class TestTcpSmoke:
    """Tier-1 smoke: start a real server, one request, clean shutdown."""

    def test_tcp_round_trip(self):
        async def scenario():
            server = BandwidthServer(
                EvaluationService(disk_cache=None),
                config=ServeConfig(gather_window_seconds=0.001),
            )
            host, port = await server.serve_tcp()
            response = await request_once(
                host, port, evaluate_frame("smoke", 4)
            )
            await server.close()
            return server, response

        server, response = run_async(scenario())
        assert response["ok"]
        assert response["id"] == "smoke"
        serial = EvaluationService(disk_cache=None)
        expected = protocol.encode_result(
            serial.evaluate(paper_config(), (read_stream(4),))
        )
        assert response["result"] == expected
        assert server.stats.completed == 1

    def test_pipelined_requests_on_one_connection(self):
        async def scenario():
            server = BandwidthServer(
                EvaluationService(disk_cache=None),
                config=ServeConfig(gather_window_seconds=0.001),
            )
            host, port = await server.serve_tcp()
            client = await ServeClient.connect(host, port)
            responses = await asyncio.gather(*(
                client.request(evaluate_frame(None, threads))
                for threads in (1, 2, 3, 4)
            ))
            await client.close()
            await server.close()
            return server, responses

        server, responses = run_async(scenario())
        assert [r["ok"] for r in responses] == [True] * 4
        totals = [r["result"]["total_gbps"] for r in responses]
        assert totals == sorted(totals)  # more threads, more bandwidth
        assert server.stats.completed == 4
