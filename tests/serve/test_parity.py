"""Coalescing parity: a seeded request storm is bit-identical to serial.

The property under test is the whole point of the gather window: batching
concurrent requests through :meth:`EvaluationService.evaluate_grid_columns`
and slicing the columns back per-request must be indistinguishable — in
results *and* in cache accounting — from answering each request one at a
time with :meth:`EvaluationService.evaluate` in submission order.

Responses are compared as encoded JSON payloads; since the codec uses
``repr``-round-trip floats, payload equality is bit-identity.
"""

import asyncio
import random

from repro.obs import CountersRecorder
from repro.serve import protocol
from repro.sweep.service import EvaluationService

from tests.serve.conftest import run_async
from tests.serve.test_server import WINDOW, make_server

SEED = 20210621
STORM_SIZE = 200
BURSTS = 10

#: Cache-relevant counters that must agree between the coalesced and the
#: serial run — the dedup-for-parity design answers in-window duplicates
#: through the memo *after* the batch, so hit/miss tallies line up.
CACHE_COUNTERS = ("sweep.cache.hits_count", "sweep.cache.misses_count")


def storm_shapes():
    """Distinct request bodies: mixed ops, sockets, ablations, duplicates
    arise from sampling these with replacement."""
    shapes = []
    for threads in (1, 2, 3, 4, 6, 8, 12, 18):
        for op in ("read", "write"):
            shapes.append({"streams": [{"op": op, "threads": threads}]})
    for threads in (2, 4, 8, 16):
        shapes.append({"streams": [{"op": "read", "threads": threads,
                                    "pattern": "random",
                                    "access_size": 256}]})
        shapes.append({"streams": [{"op": "read", "threads": threads}],
                       "prefetcher": False})
        shapes.append({"streams": [{"op": "write", "threads": threads}],
                       "write_combining": False})
        shapes.append({"streams": [{"op": "read", "threads": threads,
                                    "issuing_socket": 0,
                                    "target_socket": 1}]})
        shapes.append({"streams": [{"op": "read", "threads": threads},
                                   {"op": "write", "threads": 2}]})
        shapes.append({"streams": [{"op": "read", "threads": threads}],
                       "warm_pairs": [[0, 0], [1, 1]]})
        shapes.append({"streams": [{"op": "read", "threads": threads}],
                       "counters": True})
    return shapes


def storm_frames(rng):
    shapes = storm_shapes()
    frames = []
    for i in range(STORM_SIZE):
        frame = {"kind": "evaluate", "id": f"storm-{i}"}
        frame.update(rng.choice(shapes))
        frames.append(frame)
    return frames


def serial_answers(frames):
    """The ground truth: one memoized service, submission order, no server."""
    recorder = CountersRecorder()
    service = EvaluationService(disk_cache=None)
    responses = []
    for frame in frames:
        request = protocol.decode_request(frame)
        result = service.evaluate(
            request.config, request.streams, request.directory,
            recorder=recorder,
        )
        payload = protocol.encode_result(
            result, include_counters=request.include_counters
        )
        responses.append(protocol.ok_response(request.id, "evaluate", payload))
    return responses, recorder


class TestStormParity:
    def test_seeded_storm_is_bit_identical_to_serial(self, fake_clock):
        frames = storm_frames(random.Random(SEED))

        async def scenario():
            server, recorder = make_server(
                fake_clock, max_batch_points=64, max_queue_depth=64
            )
            responses = [None] * len(frames)
            per_burst = STORM_SIZE // BURSTS
            for burst in range(BURSTS):
                start = burst * per_burst
                tasks = {
                    index: asyncio.ensure_future(server.submit(frames[index]))
                    for index in range(start, start + per_burst)
                }
                await fake_clock.drain()
                await fake_clock.advance(WINDOW)
                for index, task in tasks.items():
                    responses[index] = await task
            await server.close()
            return server, recorder, responses

        server, recorder, responses = run_async(scenario())
        expected, serial_recorder = serial_answers(frames)
        assert server.stats.completed == STORM_SIZE
        mismatched = [
            index for index, (got, want) in enumerate(zip(responses, expected))
            if protocol.dump_line(got) != protocol.dump_line(want)
        ]
        assert mismatched == []

        # Cache accounting matches the serial run exactly: in-window
        # duplicates become memo hits in both worlds.
        for name in CACHE_COUNTERS:
            assert recorder.counters[name] == serial_recorder.counters[name], name
        total = (recorder.counters["sweep.cache.hits_count"]
                 + recorder.counters["sweep.cache.misses_count"])
        assert total == STORM_SIZE

        # The storm actually exercised coalescing, not 200 lonely batches.
        sizes = recorder.histograms["serve.coalesce.batch_size_count"]
        assert sizes.maximum >= 2
        assert server.stats.coalesced_points > 0
        assert server.stats.batches < STORM_SIZE
