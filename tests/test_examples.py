"""Smoke tests: the shipped examples must run and tell their story.

The SSB-heavy examples are exercised end-to-end in their own modules'
tests; here the model-only examples run fully and the SSB ones are
import-checked, keeping the suite fast.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestModelOnlyExamples:
    def test_quickstart(self, capsys):
        out = _run("quickstart.py", capsys)
        assert "2-socket system" in out
        assert "boomerang" in out
        assert "HOLDS" in out and "VIOLATED" not in out

    def test_placement_advisor(self, capsys):
        out = _run("placement_advisor.py", capsys)
        assert out.count("Recommended PMEM configuration") == 3
        assert "fsdax" in out  # the no-control scenario

    def test_mixed_workload_tuning(self, capsys):
        out = _run("mixed_workload_tuning.py", capsys)
        assert "interference map" in out
        assert "serialize" in out or "concurrently" in out


class TestSsbExamplesImportable:
    @pytest.mark.parametrize(
        "name",
        ["ssb_analysis.py", "capacity_planning.py", "hybrid_design.py"],
    )
    def test_compiles(self, name):
        source = (EXAMPLES / name).read_text()
        compile(source, name, "exec")

    def test_ssb_analysis_runs_at_tiny_scale(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["ssb_analysis.py", "0.01"])
        out = _run("ssb_analysis.py", capsys)
        assert "Figure 14b" in out
        assert "Table 1" in out
        assert "average slowdown" in out
