"""Tests for the SSB schema and dictionary encodings."""

import pytest

from repro.errors import SchemaError
from repro.ssb import schema


class TestVocabularies:
    def test_five_regions(self):
        assert len(schema.REGIONS) == 5

    def test_twentyfive_nations_five_per_region(self):
        assert len(schema.NATIONS) == 25
        for region_code in range(5):
            assert len(schema.nation_of_region(region_code)) == 5

    def test_region_of_nation_round_trip(self):
        for nation_code in range(25):
            region_code = schema.region_of_nation(nation_code)
            assert nation_code in schema.nation_of_region(region_code)

    def test_city_codes_dense(self):
        assert schema.city_code(0, 0) == 0
        assert schema.city_code(24, 9) == 249

    def test_city_name_prefix(self):
        # The spec: city = first 9 chars of the nation + a digit.
        name = schema.city_name(schema.city_code(schema.NATIONS.index("UNITED KINGDOM"), 5))
        assert name.startswith("UNITED KI")
        assert name.endswith("5")

    def test_invalid_codes_rejected(self):
        with pytest.raises(SchemaError):
            schema.region_of_nation(25)
        with pytest.raises(SchemaError):
            schema.city_code(0, 10)
        with pytest.raises(SchemaError):
            schema.nation_of_region(7)


class TestBrandEncoding:
    def test_brand_name_round_trip(self):
        code = schema.brand_code(2, 2, 39)
        assert schema.brand_name(code) == "MFGR#2239"

    def test_thousand_brands(self):
        codes = {
            schema.brand_code(m, c, b)
            for m in range(1, 6)
            for c in range(1, 6)
            for b in range(1, 41)
        }
        assert len(codes) == 1000
        assert min(codes) == 0 and max(codes) == 999

    def test_category_name(self):
        assert schema.category_name(0) == "MFGR#11"
        assert schema.category_name(24) == "MFGR#55"

    def test_invalid_brand_triple(self):
        with pytest.raises(SchemaError):
            schema.brand_code(6, 1, 1)
        with pytest.raises(SchemaError):
            schema.brand_code(1, 1, 41)


class TestTableSpecs:
    def test_lineorder_has_17_columns(self):
        assert len(schema.LINEORDER.columns) == 17

    def test_column_lookup(self):
        col = schema.LINEORDER.column("lo_revenue")
        assert col.width == 4

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            schema.DATE.column("nope")

    def test_table_lookup(self):
        assert schema.table_spec("part") is schema.PART
        with pytest.raises(SchemaError):
            schema.table_spec("orders")

    def test_row_width_positive(self):
        for spec in schema.ALL_TABLES:
            assert spec.row_width > 0


class TestCardinalities:
    def test_sf1(self):
        assert schema.lineorder_rows(1) == 6_000_000
        assert schema.customer_rows(1) == 30_000
        assert schema.supplier_rows(1) == 2_000
        assert schema.part_rows(1) == 200_000

    def test_part_grows_logarithmically(self):
        assert schema.part_rows(100) == 200_000 * 7
        assert schema.part_rows(50) == 200_000 * 6

    def test_fractional_sf(self):
        assert schema.lineorder_rows(0.1) == 600_000
        assert schema.part_rows(0.1) == 20_000

    def test_invalid_sf(self):
        with pytest.raises(SchemaError):
            schema.lineorder_rows(0)
