"""Tests for the traffic-to-runtime cost model."""

import pytest

from repro.errors import ConfigurationError
from repro.memsim import MediaKind
from repro.ssb.costmodel import LLC_BYTES_PER_SOCKET, SsbCostModel
from repro.ssb.engine.traffic import OperatorTraffic, QueryTraffic
from repro.ssb.storage import (
    HANDCRAFTED_DRAM,
    HANDCRAFTED_PMEM,
    HYRISE_DRAM,
    HYRISE_PMEM,
    TRADITIONAL_SSD,
    table1_ladder,
)
from repro.units import GB


@pytest.fixture(scope="module")
def cost_model():
    return SsbCostModel()


class TestScanBandwidth:
    def test_handcrafted_pmem_uses_both_sockets(self, cost_model):
        # 2 x ~40 GB/s near reads, under fsdax.
        gbps = cost_model.scan_gbps(HANDCRAFTED_PMEM)
        assert gbps == pytest.approx(80 / 1.075, rel=0.05)

    def test_handcrafted_dram(self, cost_model):
        assert cost_model.scan_gbps(HANDCRAFTED_DRAM) == pytest.approx(185, rel=0.05)

    def test_hyrise_single_socket(self, cost_model):
        assert cost_model.scan_gbps(HYRISE_PMEM) < 45

    def test_ssd_profile_scans_at_nvme_speed(self, cost_model):
        assert cost_model.scan_gbps(TRADITIONAL_SSD) == pytest.approx(3.2)

    def test_non_numa_aware_is_slower(self, cost_model):
        ladder = table1_ladder(MediaKind.PMEM)
        naive = cost_model.scan_gbps(ladder[2])    # 2-Socket
        aware = cost_model.scan_gbps(ladder[3])    # NUMA
        assert naive < aware


class TestRandomBandwidth:
    def test_pmem_slower_than_dram(self, cost_model):
        pmem = cost_model.random_read_gbps(HANDCRAFTED_PMEM, 256, 64e6)
        dram = cost_model.random_read_gbps(HANDCRAFTED_DRAM, 256, 64e6)
        assert pmem < dram

    def test_small_accesses_slower(self, cost_model):
        small = cost_model.random_read_gbps(HYRISE_PMEM, 64, 64e6)
        large = cost_model.random_read_gbps(HYRISE_PMEM, 256, 64e6)
        assert small < large

    def test_replicated_dimensions_double_bandwidth(self, cost_model):
        aware = cost_model.random_read_gbps(HANDCRAFTED_PMEM, 256, 64e6)
        single = cost_model.random_read_gbps(
            HANDCRAFTED_PMEM.with_(sockets=1), 256, 64e6
        )
        assert aware == pytest.approx(2 * single, rel=0.01)

    def test_non_replicated_pays_far_latency(self, cost_model):
        ladder = table1_ladder(MediaKind.PMEM)
        naive = cost_model.random_read_gbps(ladder[2], 256, 64e6)
        aware = cost_model.random_read_gbps(ladder[3], 256, 64e6)
        assert naive < aware

    def test_ssd_profile_probes_dram(self, cost_model):
        # Indexes live in DRAM for the traditional deployment.
        ssd = cost_model.random_read_gbps(TRADITIONAL_SSD, 256, 64e6)
        assert ssd > 20


class TestResidency:
    def test_small_region_fully_resident_for_aware(self, cost_model):
        assert cost_model.resident_fraction(HANDCRAFTED_PMEM, 1e6) == 1.0

    def test_large_region_partially_resident(self, cost_model):
        fraction = cost_model.resident_fraction(
            HANDCRAFTED_PMEM, 4 * LLC_BYTES_PER_SOCKET
        )
        assert 0 < fraction <= 0.5

    def test_unaware_profile_never_resident(self, cost_model):
        assert cost_model.resident_fraction(HYRISE_PMEM, 1e6) == 0.0


class TestPricing:
    def _traffic(self):
        traffic = QueryTraffic(query="synthetic")
        traffic.add(OperatorTraffic(name="scan", seq_read_bytes=10 * GB, cpu_tuples=1e6))
        traffic.add(
            OperatorTraffic(
                name="probe",
                random_reads=1e8,
                random_read_size=256,
                cpu_tuples=1e8,
                cpu_weight=12.0,
                random_region_bytes=1e9,
            )
        )
        return traffic

    def test_pmem_slower_than_dram(self, cost_model):
        traffic = self._traffic()
        pmem = cost_model.price(traffic, HANDCRAFTED_PMEM).seconds
        dram = cost_model.price(traffic, HANDCRAFTED_DRAM).seconds
        assert pmem > dram

    def test_scale_ratio_scales_time(self, cost_model):
        traffic = self._traffic()
        t1 = cost_model.price(traffic, HANDCRAFTED_PMEM).seconds
        t10 = cost_model.price(traffic, HANDCRAFTED_PMEM, scale_ratio=10).seconds
        assert t10 == pytest.approx(10 * t1, rel=0.15)

    def test_invalid_ratio(self, cost_model):
        with pytest.raises(ConfigurationError):
            cost_model.price(self._traffic(), HANDCRAFTED_PMEM, scale_ratio=0)

    def test_breakdown_phases_named(self, cost_model):
        breakdown = cost_model.price(self._traffic(), HANDCRAFTED_PMEM)
        assert [p.name for p in breakdown.phases] == ["scan", "probe"]
        assert "handcrafted-pmem" in breakdown.describe()

    def test_memory_bound_fraction(self, cost_model):
        breakdown = cost_model.price(self._traffic(), HANDCRAFTED_PMEM)
        assert 0.0 <= breakdown.memory_bound_fraction <= 1.0

    def test_invalid_cpu_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            SsbCostModel(cpu_seconds_per_tuple=0)


class TestHybridProfile:
    """The §9 future-work design: PMEM base tables, DRAM indexes."""

    def test_effective_index_media(self):
        from repro.memsim import MediaKind
        from repro.ssb.storage import HYBRID_PMEM_DRAM

        assert HYBRID_PMEM_DRAM.media is MediaKind.PMEM
        assert HYBRID_PMEM_DRAM.effective_index_media is MediaKind.DRAM
        assert HANDCRAFTED_PMEM.effective_index_media is MediaKind.PMEM

    def test_hybrid_probes_at_dram_speed(self, cost_model):
        from repro.ssb.storage import HYBRID_PMEM_DRAM

        hybrid = cost_model.random_read_gbps(HYBRID_PMEM_DRAM, 256, 64e6)
        pmem = cost_model.random_read_gbps(HANDCRAFTED_PMEM, 256, 64e6)
        assert hybrid > 1.5 * pmem

    def test_hybrid_scans_at_pmem_speed(self, cost_model):
        from repro.ssb.storage import HYBRID_PMEM_DRAM

        assert cost_model.scan_gbps(HYBRID_PMEM_DRAM) == pytest.approx(
            cost_model.scan_gbps(HANDCRAFTED_PMEM)
        )

    def test_hybrid_between_pmem_and_dram(self):
        from repro.ssb.runner import SsbRunner
        from repro.ssb.storage import HYBRID_PMEM_DRAM

        runner = SsbRunner(measured_sf=0.02, seed=5)
        pmem = runner.run(HANDCRAFTED_PMEM, target_sf=100).average_seconds
        hybrid = runner.run(HYBRID_PMEM_DRAM, target_sf=100).average_seconds
        dram = runner.run(HANDCRAFTED_DRAM, target_sf=100).average_seconds
        assert dram < hybrid < pmem

    def test_index_media_cannot_be_ssd(self):
        from repro.errors import ConfigurationError
        from repro.memsim import MediaKind

        with pytest.raises(ConfigurationError):
            HANDCRAFTED_PMEM.with_(index_media=MediaKind.SSD)
