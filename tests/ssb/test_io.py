"""Tests for database persistence and import estimation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, SchemaError
from repro.memsim import MediaKind
from repro.ssb.dbgen import generate
from repro.ssb.io import (
    estimate_import,
    import_advice,
    load_database,
    save_database,
)
from repro.units import GB


@pytest.fixture(scope="module")
def db():
    return generate(scale_factor=0.01, seed=4)


class TestPersistence:
    def test_round_trip(self, db, tmp_path):
        path = save_database(db, tmp_path / "ssb.npz")
        loaded = load_database(path)
        assert loaded.scale_factor == db.scale_factor
        for name in ("lineorder", "date", "customer", "supplier", "part"):
            original = db.table(name)
            restored = loaded.table(name)
            assert restored.n_rows == original.n_rows
            for column in original.spec.column_names():
                assert np.array_equal(restored[column], original[column])

    def test_loaded_database_answers_queries_identically(self, db, tmp_path):
        from repro.ssb.engine import SsbExecutor
        from repro.ssb.queries import get_query
        from repro.ssb.storage import HANDCRAFTED_PMEM

        path = save_database(db, tmp_path / "ssb.npz")
        loaded = load_database(path)
        query = get_query("Q2.1")
        a = SsbExecutor(db, HANDCRAFTED_PMEM).execute(query)
        b = SsbExecutor(loaded, HANDCRAFTED_PMEM).execute(query)
        assert a.groups == b.groups

    def test_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_database(tmp_path / "nope.npz")

    def test_non_ssb_archive_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez_compressed(path, something=np.arange(3))
        with pytest.raises(SchemaError):
            load_database(path)

    def test_suffix_normalisation(self, db, tmp_path):
        path = save_database(db, tmp_path / "archive")
        assert path.suffix == ".npz"
        assert path.exists()


class TestImportEstimation:
    def test_best_practice_rate(self):
        # 6 threads x 4 KB on both sockets: ~2 x 13.2 GB/s.
        estimate = estimate_import(70 * GB)
        assert estimate.gbps == pytest.approx(26.4, rel=0.05)
        assert estimate.seconds == pytest.approx(70 / 26.4, rel=0.05)

    def test_naive_configuration_is_slower(self):
        tuned = estimate_import(70 * GB, threads=6, access_size=4096)
        naive = estimate_import(70 * GB, threads=36, access_size=1 << 20)
        assert naive.seconds > 2 * tuned.seconds

    def test_dram_ingest_faster(self):
        pmem = estimate_import(70 * GB)
        dram = estimate_import(70 * GB, media=MediaKind.DRAM, threads=18)
        assert dram.seconds < pmem.seconds

    def test_single_socket_halves_rate(self):
        both = estimate_import(70 * GB, sockets=2)
        one = estimate_import(70 * GB, sockets=1)
        assert both.gbps == pytest.approx(2 * one.gbps)

    def test_invalid_volume(self):
        with pytest.raises(ConfigurationError):
            estimate_import(0)

    def test_invalid_sockets(self):
        with pytest.raises(ConfigurationError):
            estimate_import(GB, sockets=3)

    def test_advice_text(self):
        text = import_advice(70 * GB)
        assert "best practice" in text
        assert "x faster" in text
