"""Tests for the SSB data generator."""

import numpy as np
import pytest

from repro.errors import SchemaError
from repro.ssb import schema
from repro.ssb.dbgen import SsbDatabase, Table, generate, generate_date


@pytest.fixture(scope="module")
def db() -> SsbDatabase:
    return generate(scale_factor=0.02, seed=7)


class TestDateDimension:
    def test_2556_rows(self):
        assert generate_date().n_rows == schema.DATE_ROWS

    def test_seven_years(self):
        date = generate_date()
        years = np.unique(date["d_year"])
        assert years.min() == 1992 and years.max() == 1998

    def test_datekey_format(self):
        date = generate_date()
        assert date["d_datekey"][0] == 19920101
        assert 19920101 <= int(date["d_datekey"].max()) <= 19981231

    def test_yearmonthnum(self):
        date = generate_date()
        assert np.all(date["d_yearmonthnum"] == date["d_datekey"] // 100)

    def test_datekeys_unique_and_sorted(self):
        keys = generate_date()["d_datekey"]
        assert len(np.unique(keys)) == len(keys)
        assert np.all(np.diff(keys) > 0)

    def test_week_numbers_in_range(self):
        date = generate_date()
        assert date["d_weeknuminyear"].min() >= 1
        assert date["d_weeknuminyear"].max() <= 53


class TestDimensions:
    def test_cardinalities(self, db):
        assert db.customer.n_rows == schema.customer_rows(0.02)
        assert db.supplier.n_rows == schema.supplier_rows(0.02)
        assert db.part.n_rows == schema.part_rows(0.02)

    def test_keys_dense_one_based(self, db):
        assert db.customer["c_custkey"][0] == 1
        assert db.customer["c_custkey"][-1] == db.customer.n_rows

    def test_region_consistent_with_nation(self, db):
        assert np.all(db.customer["c_region"] == db.customer["c_nation"] // 5)
        assert np.all(db.supplier["s_region"] == db.supplier["s_nation"] // 5)

    def test_city_consistent_with_nation(self, db):
        assert np.all(db.customer["c_city"] // 10 == db.customer["c_nation"])

    def test_brand_consistent_with_category(self, db):
        assert np.all(db.part["p_brand1"] // 40 == db.part["p_category"])

    def test_category_consistent_with_mfgr(self, db):
        assert np.all(db.part["p_category"] // 5 == db.part["p_mfgr"] - 1)


class TestLineorder:
    def test_cardinality(self, db):
        assert db.lineorder.n_rows == schema.lineorder_rows(0.02)

    def test_foreign_keys_in_range(self, db):
        lo = db.lineorder
        assert lo["lo_custkey"].min() >= 1
        assert lo["lo_custkey"].max() <= db.customer.n_rows
        assert lo["lo_suppkey"].max() <= db.supplier.n_rows
        assert lo["lo_partkey"].max() <= db.part.n_rows

    def test_orderdates_are_valid_datekeys(self, db):
        valid = set(db.date["d_datekey"].tolist())
        sample = db.lineorder["lo_orderdate"][:1000]
        assert all(int(k) in valid for k in sample)

    def test_discount_and_quantity_ranges(self, db):
        lo = db.lineorder
        assert lo["lo_discount"].min() >= 0 and lo["lo_discount"].max() <= 10
        assert lo["lo_quantity"].min() >= 1 and lo["lo_quantity"].max() <= 50

    def test_revenue_formula(self, db):
        lo = db.lineorder
        expected = (
            lo["lo_extendedprice"].astype(np.int64)
            * (100 - lo["lo_discount"].astype(np.int64))
            // 100
        )
        assert np.array_equal(lo["lo_revenue"], expected.astype(np.int32))


class TestDeterminismAndValidation:
    def test_deterministic_for_seed(self):
        a = generate(scale_factor=0.01, seed=3)
        b = generate(scale_factor=0.01, seed=3)
        assert np.array_equal(a.lineorder["lo_custkey"], b.lineorder["lo_custkey"])

    def test_seeds_differ(self):
        a = generate(scale_factor=0.01, seed=3)
        b = generate(scale_factor=0.01, seed=4)
        assert not np.array_equal(a.lineorder["lo_custkey"], b.lineorder["lo_custkey"])

    def test_invalid_sf(self):
        with pytest.raises(SchemaError):
            generate(scale_factor=0)

    def test_table_lookup(self, db):
        assert db.table("part") is db.part
        with pytest.raises(SchemaError):
            db.table("orders")

    def test_total_bytes_positive(self, db):
        assert db.total_bytes > 0


class TestTableContainer:
    def test_ragged_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table(
                spec=schema.SUPPLIER,
                columns={
                    "s_suppkey": np.arange(3, dtype=np.int32),
                    "s_city": np.zeros(2, dtype=np.int16),
                    "s_nation": np.zeros(3, dtype=np.int8),
                    "s_region": np.zeros(3, dtype=np.int8),
                },
            )

    def test_missing_column_rejected(self):
        with pytest.raises(SchemaError):
            Table(spec=schema.SUPPLIER, columns={"s_suppkey": np.arange(3)})

    def test_take_by_mask(self, db):
        mask = db.supplier["s_region"] == 0
        subset = db.supplier.take(mask)
        assert subset.n_rows == int(mask.sum())
        assert np.all(subset["s_region"] == 0)

    def test_column_bytes_subset(self, db):
        all_bytes = db.customer.column_bytes()
        key_bytes = db.customer.column_bytes(["c_custkey"])
        assert 0 < key_bytes < all_bytes
