"""Tests for the SSB experiment runner: the paper's §6 claims as
assertions. These encode Fig. 14a/14b, Table 1, and the SSD contrast."""

import pytest

from repro.errors import ConfigurationError
from repro.ssb.queries import ALL_QUERIES
from repro.ssb.runner import SsbRunner, average_slowdown, slowdown
from repro.ssb.storage import HANDCRAFTED_PMEM


@pytest.fixture(scope="module")
def runner():
    return SsbRunner(measured_sf=0.02, seed=5)


@pytest.fixture(scope="module")
def fig14b(runner):
    return runner.figure14b()


@pytest.fixture(scope="module")
def fig14a(runner):
    return runner.figure14a()


@pytest.fixture(scope="module")
def table1(runner):
    return runner.table1()


class TestFigure14b:
    def test_pmem_slower_on_every_query(self, fig14b):
        for name in (q.name for q in ALL_QUERIES):
            assert (
                fig14b["pmem"].breakdowns[name].seconds
                > fig14b["dram"].breakdowns[name].seconds
            )

    def test_average_slowdown_band(self, fig14b):
        # Paper: 1.66x average. The reproduction must land in a
        # PMEM-is-viable band, far below the unaware 5.3x.
        avg = average_slowdown(fig14b["pmem"], fig14b["dram"])
        assert 1.3 < avg < 2.8

    def test_qf1_seconds_order_of_magnitude(self, fig14b):
        # Paper: ~1.3 s on PMEM, ~0.5 s on DRAM per QF1 query at sf 100.
        pmem_qf1 = fig14b["pmem"].flight_seconds(1) / 3
        dram_qf1 = fig14b["dram"].flight_seconds(1) / 3
        assert 0.8 < pmem_qf1 < 2.5
        assert 0.3 < dram_qf1 < 1.2

    def test_join_flights_slower_than_scan_flight(self, fig14b):
        run = fig14b["pmem"]
        qf1 = run.flight_seconds(1) / 3
        qf2 = run.flight_seconds(2) / 3
        assert qf2 > 3 * qf1  # joins dominate raw scans

    def test_slowdown_band_per_query(self, fig14b):
        # Paper range: 1.4x (Q3.3) to 3x (Q1.3).
        for ratio in slowdown(fig14b["pmem"], fig14b["dram"]).values():
            assert 1.2 < ratio < 3.5


class TestFigure14a:
    def test_unaware_much_worse_than_aware(self, fig14a, fig14b):
        hyrise = average_slowdown(fig14a["pmem"], fig14a["dram"])
        handcrafted = average_slowdown(fig14b["pmem"], fig14b["dram"])
        assert hyrise > 1.7 * handcrafted

    def test_average_slowdown_band(self, fig14a):
        # Paper: 5.3x average (2.5x .. 7.7x per query).
        avg = average_slowdown(fig14a["pmem"], fig14a["dram"])
        assert 3.5 < avg < 7.0

    def test_pmem_always_slower(self, fig14a):
        for ratio in slowdown(fig14a["pmem"], fig14a["dram"]).values():
            assert ratio > 2.0


class TestTable1:
    def test_ladder_monotone(self, table1):
        for media in ("pmem", "dram"):
            steps = list(table1[media].values())
            assert all(a >= b * 0.999 for a, b in zip(steps, steps[1:])), steps

    def test_thread_scaling_speedup(self, table1):
        # Paper: 12x (PMEM) / 14x (DRAM) from 1 to 18 threads.
        for media, band in (("pmem", (8, 25)), ("dram", (8, 25))):
            speedup = table1[media]["1 Thr."] / table1[media]["18 Thr."]
            assert band[0] < speedup < band[1]

    def test_two_socket_speedup(self, table1):
        # Paper: "the runtime of both PMEM and DRAM can be further
        # reduced ... when utilizing the dual-socket architecture"
        # (Table 1: 25.1 -> 12.3 and 15.2 -> 9.2 including NUMA).
        for media in ("pmem", "dram"):
            ratio = table1[media]["18 Thr."] / table1[media]["NUMA"]
            assert 1.5 < ratio < 4.0

    def test_final_magnitudes(self, table1):
        # Paper: 8.6 s PMEM, 5.2 s DRAM.
        assert 6.0 < table1["pmem"]["Pinning"] < 14.0
        assert 3.5 < table1["dram"]["Pinning"] < 8.0

    def test_final_ratio(self, table1):
        ratio = table1["pmem"]["Pinning"] / table1["dram"]["Pinning"]
        assert 1.3 < ratio < 2.6

    def test_pinning_helps_pmem(self, table1):
        assert table1["pmem"]["Pinning"] < table1["pmem"]["NUMA"]


class TestSsdContrast:
    def test_pmem_beats_ssd_by_over_2x(self, runner, table1):
        # Paper: "PMEM outperforms SSDs by over a factor of 2.6x".
        ssd = runner.q21_on_ssd()
        pmem = table1["pmem"]["Pinning"]
        assert ssd / pmem > 2.0

    def test_ssd_magnitude(self, runner):
        # Paper: 22.8 s, limited by the table-scan bandwidth.
        assert 15.0 < runner.q21_on_ssd() < 40.0


class TestRunnerMechanics:
    def test_invalid_target_sf(self, runner):
        with pytest.raises(ConfigurationError):
            runner.run(HANDCRAFTED_PMEM, target_sf=0)

    def test_run_covers_all_queries(self, runner):
        run = runner.run(HANDCRAFTED_PMEM, target_sf=10)
        assert set(run.seconds) == {q.name for q in ALL_QUERIES}

    def test_average_seconds(self, runner):
        run = runner.run(HANDCRAFTED_PMEM, target_sf=10)
        assert run.average_seconds > 0

    def test_traffic_cached_across_profiles(self, runner):
        # PMEM and DRAM variants share one engine configuration; the
        # second run must reuse the recorded traffic (same object).
        t1 = runner._traffic_for(HANDCRAFTED_PMEM, ALL_QUERIES)
        from repro.ssb.storage import HANDCRAFTED_DRAM

        t2 = runner._traffic_for(HANDCRAFTED_DRAM, ALL_QUERIES)
        assert t1["Q2.1"] is t2["Q2.1"]

    def test_memory_bound_fraction_matches_paper(self, fig14b):
        # §6.2: "the benchmark is memory bound over 70% of the time" for
        # the join-heavy queries on PMEM.
        q21 = fig14b["pmem"].breakdowns["Q2.1"]
        assert q21.memory_bound_fraction > 0.7
