"""Engine correctness tests: every query checked against a brute-force
numpy reference implementation, across both system profiles."""

import numpy as np
import pytest

from repro.ssb.dbgen import generate
from repro.ssb.engine import SsbExecutor
from repro.ssb.queries import ALL_QUERIES, get_query
from repro.ssb.storage import HANDCRAFTED_PMEM, HYRISE_PMEM


@pytest.fixture(scope="module")
def db():
    return generate(scale_factor=0.02, seed=5)


@pytest.fixture(scope="module")
def executor(db):
    return SsbExecutor(db, HANDCRAFTED_PMEM)


def brute_force(db, query):
    """Reference implementation: dictionaries + per-row loop semantics,
    vectorised with numpy for speed but structurally independent of the
    engine under test."""
    lo = db.lineorder
    mask = np.ones(lo.n_rows, dtype=bool)
    for predicate in query.fact_filters:
        mask &= predicate.evaluate(lo[predicate.column])

    payloads = {}
    for join in query.joins:
        dim = db.table(join.table)
        dim_mask = np.ones(dim.n_rows, dtype=bool)
        for predicate in join.filters:
            dim_mask &= predicate.evaluate(dim[predicate.column])
        keys = dim[join.dim_key]
        # Dense 1-based keys for dims; date keys are sparse -> use a map.
        lookup = np.full(int(keys.max()) + 1, -1, dtype=np.int64)
        lookup[keys[dim_mask]] = np.nonzero(dim_mask)[0]
        fk = lo[join.fact_key]
        positions = np.where(
            (fk >= 0) & (fk <= keys.max()), lookup[np.clip(fk, 0, keys.max())], -1
        )
        mask &= positions >= 0
        payloads[join.table] = (join, positions)

    rows = np.nonzero(mask)[0]
    group_cols = []
    for column in query.group_by:
        for join, positions in payloads.values():
            dim = db.table(join.table)
            if column in dim.spec.column_names():
                group_cols.append(dim[column][positions[rows]].astype(np.int64))
                break
        else:
            raise AssertionError(f"column {column} not found")
    measure = query.aggregate.compute(lo.take(rows))
    if not group_cols:
        return {(): int(measure.sum())} if len(rows) else {(): 0}
    stacked = np.stack(group_cols, axis=1)
    uniques, inverse = np.unique(stacked, axis=0, return_inverse=True)
    sums = np.zeros(len(uniques), dtype=np.int64)
    np.add.at(sums, inverse, measure)
    return {tuple(int(x) for x in key): int(v) for key, v in zip(uniques, sums)}


class TestCorrectnessAgainstBruteForce:
    @pytest.mark.parametrize("name", [q.name for q in ALL_QUERIES])
    def test_query_matches_reference(self, db, executor, name):
        query = get_query(name)
        result = executor.execute(query)
        expected = brute_force(db, query)
        if not expected.get((), 1) and not result.groups:
            return  # both empty
        assert result.groups == expected

    def test_profiles_agree(self, db):
        aware = SsbExecutor(db, HANDCRAFTED_PMEM)
        unaware = SsbExecutor(db, HYRISE_PMEM)
        for query in ALL_QUERIES:
            assert aware.execute(query).groups == unaware.execute(query).groups


class TestResults:
    def test_flight1_scalar(self, executor):
        result = executor.execute(get_query("Q1.1"))
        assert result.scalar > 0
        assert result.n_groups == 1

    def test_grouped_query_rejects_scalar(self, executor):
        result = executor.execute(get_query("Q2.1"))
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            _ = result.scalar

    def test_selectivity_ordering(self, executor):
        # Within a flight, later queries are more selective (SSB design).
        q21 = executor.execute(get_query("Q2.1")).qualifying_rows
        q22 = executor.execute(get_query("Q2.2")).qualifying_rows
        q23 = executor.execute(get_query("Q2.3")).qualifying_rows
        assert q21 > q22 > q23

    def test_group_keys_have_query_arity(self, executor):
        result = executor.execute(get_query("Q3.1"))
        assert all(len(key) == 3 for key in result.groups)

    def test_q31_years_in_filter_range(self, executor):
        result = executor.execute(get_query("Q3.1"))
        years = {key[2] for key in result.groups}
        assert years <= set(range(1992, 1998))


class TestTrafficAccounting:
    def test_every_query_records_fact_scan(self, executor):
        for query in ALL_QUERIES:
            traffic = executor.execute(query).traffic
            assert traffic.operators[0].name == "fact-scan"
            assert traffic.operators[0].seq_read_bytes > 0

    def test_row128_scan_volume(self, db, executor):
        traffic = executor.execute(get_query("Q1.1")).traffic
        assert traffic.operators[0].seq_read_bytes == db.lineorder.n_rows * 128

    def test_columnar_scan_is_smaller(self, db):
        unaware = SsbExecutor(db, HYRISE_PMEM)
        traffic = unaware.execute(get_query("Q1.1")).traffic
        assert traffic.operators[0].seq_read_bytes < db.lineorder.n_rows * 128

    def test_probe_traffic_granularity(self, db, executor):
        traffic = executor.execute(get_query("Q2.1")).traffic
        probes = [op for op in traffic.operators if op.name.startswith("probe(")]
        assert probes
        assert all(op.random_read_size == 256 for op in probes)  # Dash buckets

    def test_unaware_probe_traffic_granularity(self, db):
        unaware = SsbExecutor(db, HYRISE_PMEM)
        traffic = unaware.execute(get_query("Q2.1")).traffic
        probes = [op for op in traffic.operators if op.name.startswith("probe(")]
        assert all(op.random_read_size == 64 for op in probes)  # chain nodes

    def test_unaware_gathers_fact_columns(self, db):
        unaware = SsbExecutor(db, HYRISE_PMEM)
        traffic = unaware.execute(get_query("Q2.1")).traffic
        gathers = [op for op in traffic.operators if op.name.startswith("fact-gather")]
        assert gathers  # later join keys + measures are positional

    def test_aware_does_not_gather(self, executor):
        traffic = executor.execute(get_query("Q2.1")).traffic
        assert not [
            op for op in traffic.operators if op.name.startswith("fact-gather")
        ]

    def test_dash_build_charged_outside_queries(self, db):
        executor = SsbExecutor(db, HANDCRAFTED_PMEM)
        traffic = executor.execute(get_query("Q2.1")).traffic
        assert not [op for op in traffic.operators if op.name.startswith("build-")]
        assert executor.build_traffic.operators  # charged to the load phase

    def test_chained_build_charged_to_query(self, db):
        executor = SsbExecutor(db, HYRISE_PMEM)
        traffic = executor.execute(get_query("Q2.1")).traffic
        assert [op for op in traffic.operators if op.name.startswith("build-")]

    def test_scaled_traffic_is_linear(self, executor):
        traffic = executor.execute(get_query("Q2.1")).traffic
        doubled = traffic.scaled(2.0)
        assert doubled.seq_read_bytes == pytest.approx(2 * traffic.seq_read_bytes)
        assert doubled.random_reads == pytest.approx(2 * traffic.random_reads)
        assert doubled.cpu_tuples == pytest.approx(2 * traffic.cpu_tuples)

    def test_region_factors_override_region_scaling(self, executor):
        traffic = executor.execute(get_query("Q2.1")).traffic
        scaled = traffic.scaled(1000.0, region_factors={"part": 7.0, "date": 1.0})
        part_probe = next(
            op for op in scaled.operators if op.name == "probe(part)"
        )
        original = next(
            op for op in traffic.operators if op.name == "probe(part)"
        )
        assert part_probe.random_region_bytes == pytest.approx(
            7.0 * original.random_region_bytes
        )
        assert part_probe.random_reads == pytest.approx(1000 * original.random_reads)
