"""Tests for the declarative SSB query definitions."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.ssb import schema
from repro.ssb.queries import (
    ALL_QUERIES,
    Predicate,
    PredicateOp,
    brand,
    category,
    city,
    flight,
    get_query,
    mfgr,
    nation,
    region,
)


class TestConstantTranslation:
    def test_region(self):
        assert region("AMERICA") == 1
        with pytest.raises(QueryError):
            region("ATLANTIS")

    def test_nation(self):
        assert schema.NATIONS[nation("UNITED STATES")] == "UNITED STATES"

    def test_city(self):
        code = city("UNITED KI5")
        assert schema.NATIONS[code // 10] == "UNITED KINGDOM"
        assert code % 10 == 5

    def test_city_requires_digit(self):
        with pytest.raises(QueryError):
            city("UNITED KIX")

    def test_brand(self):
        assert schema.brand_name(brand("MFGR#2239")) == "MFGR#2239"
        assert schema.brand_name(brand("MFGR#121")) == "MFGR#121"

    def test_category(self):
        assert schema.category_name(category("MFGR#12")) == "MFGR#12"
        with pytest.raises(QueryError):
            category("MFGR#99")

    def test_mfgr(self):
        assert mfgr("MFGR#2") == 2
        with pytest.raises(QueryError):
            mfgr("MFGR#22")


class TestPredicates:
    def test_eq(self):
        mask = Predicate("x", PredicateOp.EQ, 3).evaluate(np.array([1, 3, 3]))
        assert mask.tolist() == [False, True, True]

    def test_between_inclusive(self):
        mask = Predicate("x", PredicateOp.BETWEEN, (2, 4)).evaluate(
            np.array([1, 2, 3, 4, 5])
        )
        assert mask.tolist() == [False, True, True, True, False]

    def test_in(self):
        mask = Predicate("x", PredicateOp.IN, (1, 5)).evaluate(np.array([1, 2, 5]))
        assert mask.tolist() == [True, False, True]

    def test_lt_le(self):
        values = np.array([1, 2, 3])
        assert Predicate("x", PredicateOp.LT, 2).evaluate(values).tolist() == [
            True, False, False,
        ]
        assert Predicate("x", PredicateOp.LE, 2).evaluate(values).tolist() == [
            True, True, False,
        ]


class TestQueryCatalog:
    def test_thirteen_queries(self):
        assert len(ALL_QUERIES) == 13

    def test_four_flights(self):
        assert [len(flight(i)) for i in (1, 2, 3, 4)] == [3, 3, 4, 3]

    def test_lookup(self):
        assert get_query("Q2.1").flight == 2
        with pytest.raises(QueryError):
            get_query("Q9.9")
        with pytest.raises(QueryError):
            flight(5)

    def test_flight1_filters_fact_directly(self):
        for query in flight(1):
            assert query.fact_filters
            assert len(query.joins) == 1
            assert query.joins[0].table == "date"
            assert not query.group_by

    def test_flights_2_to_4_group(self):
        for number in (2, 3, 4):
            for query in flight(number):
                assert query.group_by
                assert not query.fact_filters

    def test_flight_join_counts(self):
        # QF2/3 join three tables, QF4 joins all four dimensions.
        assert all(len(q.joins) == 3 for q in flight(2))
        assert all(len(q.joins) == 3 for q in flight(3))
        assert all(len(q.joins) == 4 for q in flight(4))

    def test_queries_in_same_flight_join_same_tables(self):
        # SSB: "Queries inside of the same flight always join the same
        # tables but vary both in selectivity and aggregation."
        for number in (2, 3, 4):
            tables = [tuple(sorted(j.table for j in q.joins)) for q in flight(number)]
            assert len(set(tables)) == 1

    def test_group_by_columns_are_join_payloads(self):
        for query in ALL_QUERIES:
            payloads = {c for join in query.joins for c in join.payload}
            for column in query.group_by:
                assert column in payloads, (query.name, column)

    def test_join_for(self):
        query = get_query("Q4.1")
        assert query.join_for("part").fact_key == "lo_partkey"
        with pytest.raises(QueryError):
            get_query("Q1.1").join_for("part")

    def test_aggregates_by_flight(self):
        assert all(
            q.aggregate.expression == "extendedprice*discount" for q in flight(1)
        )
        assert all(q.aggregate.expression == "revenue" for q in flight(2))
        assert all(q.aggregate.expression == "revenue" for q in flight(3))
        assert all(
            q.aggregate.expression == "revenue-supplycost" for q in flight(4)
        )


class TestSqlReference:
    """The declarative plans must audit cleanly against the SQL text."""

    def test_every_query_carries_sql(self):
        for query in ALL_QUERIES:
            assert query.sql.strip().startswith("select"), query.name

    def test_sql_mentions_every_joined_table(self):
        for query in ALL_QUERIES:
            for join in query.joins:
                assert join.table in query.sql, (query.name, join.table)

    def test_sql_group_by_matches_plan(self):
        for query in ALL_QUERIES:
            if query.group_by:
                assert "group by" in query.sql, query.name
                for column in query.group_by:
                    assert column in query.sql, (query.name, column)
            else:
                assert "group by" not in query.sql, query.name

    def test_sql_constants_translate_to_plan_codes(self):
        q21 = get_query("Q2.1")
        assert "MFGR#12" in q21.sql
        part_filter = q21.join_for("part").filters[0]
        assert part_filter.value == category("MFGR#12")

    def test_sql_aggregates_match(self):
        for query in ALL_QUERIES:
            if query.flight == 1:
                assert "lo_extendedprice*lo_discount" in query.sql
            elif query.flight == 4:
                assert "lo_revenue - lo_supplycost" in query.sql
            else:
                assert "sum(lo_revenue)" in query.sql
