"""Tests for the Dash-like and chained hash indexes."""

import numpy as np
import pytest

from repro.memsim.constants import CACHE_LINE, OPTANE_LINE
from repro.ssb.hashindex import BUCKET_SLOTS, ChainedIndex, DashIndex


@pytest.fixture
def keys():
    rng = np.random.default_rng(11)
    return rng.choice(100_000, size=5_000, replace=False).astype(np.int64)


class TestDashCorrectness:
    def test_insert_get(self):
        index = DashIndex()
        index.insert(42, 7)
        assert index.get(42) == 7
        assert len(index) == 1

    def test_overwrite(self):
        index = DashIndex()
        index.insert(42, 7)
        index.insert(42, 9)
        assert index.get(42) == 9
        assert len(index) == 1

    def test_missing_key_raises(self):
        index = DashIndex()
        with pytest.raises(KeyError):
            index.get(123)

    def test_missing_key_default(self):
        index = DashIndex()
        assert index.get(123, default=-1) == -1

    def test_contains(self):
        index = DashIndex()
        index.insert(5, 50)
        assert 5 in index
        assert 6 not in index

    def test_bulk_round_trip(self, keys):
        index = DashIndex()
        index.bulk_insert(keys, keys * 3)
        out = index.bulk_probe(keys)
        assert np.array_equal(out, keys * 3)

    def test_bulk_probe_misses(self, keys):
        index = DashIndex()
        index.bulk_insert(keys, keys)
        missing = np.arange(200_000, 200_100, dtype=np.int64)
        out = index.bulk_probe(missing, missing=-7)
        assert np.all(out == -7)

    def test_scalar_and_bulk_agree(self, keys):
        index = DashIndex()
        index.bulk_insert(keys, keys + 1)
        bulk = index.bulk_probe(keys[:100])
        scalars = [index.get(int(k)) for k in keys[:100]]
        assert bulk.tolist() == scalars

    def test_splits_happen_and_preserve_contents(self, keys):
        index = DashIndex(initial_depth=0)
        index.bulk_insert(keys, keys)
        assert index.segment_count > 1  # 5k keys overflow one segment
        out = index.bulk_probe(keys)
        assert np.array_equal(out, keys)

    def test_negative_and_large_keys(self):
        index = DashIndex()
        for key in (-5, 0, 2**40):
            index.insert(key, key % 97)
            assert index.get(key) == key % 97


class TestDashStructure:
    def test_bucket_is_one_optane_line(self):
        # 14 slots of fingerprint + key/value reference fit one 256 B line.
        assert BUCKET_SLOTS == 14

    def test_memory_counts_lines(self, keys):
        index = DashIndex()
        index.bulk_insert(keys, keys)
        assert index.memory_bytes % OPTANE_LINE == 0
        assert index.memory_bytes >= len(keys) / BUCKET_SLOTS * OPTANE_LINE

    def test_probe_traffic_is_line_granular(self, keys):
        index = DashIndex()
        index.bulk_insert(keys, keys)
        index.bulk_probe(keys[:1000])
        assert index.stats.access_size == OPTANE_LINE
        # A hit probe touches one or two buckets, misses add the stash.
        assert 1.0 <= index.stats.reads_per_probe <= 3.0

    def test_build_traffic_separate_from_probe(self, keys):
        index = DashIndex()
        index.bulk_insert(keys, keys)
        assert index.stats.probes == 0
        assert index.stats.bucket_writes >= len(keys)
        before = index.stats.read_bytes
        index.bulk_probe(keys[:10])
        assert index.stats.read_bytes > before


class TestChainedCorrectness:
    def test_insert_get(self):
        index = ChainedIndex()
        index.insert(42, 7)
        assert index.get(42) == 7

    def test_missing_raises(self):
        index = ChainedIndex()
        with pytest.raises(KeyError):
            index.get(1)

    def test_bulk_round_trip(self, keys):
        index = ChainedIndex(expected_size=len(keys))
        index.bulk_insert(keys, keys * 5)
        out = index.bulk_probe(keys)
        assert np.array_equal(out, keys * 5)

    def test_bulk_probe_misses(self, keys):
        index = ChainedIndex(expected_size=len(keys))
        index.bulk_insert(keys, keys)
        out = index.bulk_probe(np.arange(500_000, 500_050, dtype=np.int64))
        assert np.all(out == -1)

    def test_scalar_and_bulk_agree(self, keys):
        index = ChainedIndex(expected_size=len(keys))
        index.bulk_insert(keys, keys + 2)
        bulk = index.bulk_probe(keys[:50])
        scalars = [index.get(int(k)) for k in keys[:50]]
        assert bulk.tolist() == scalars

    def test_pool_grows(self):
        index = ChainedIndex(expected_size=2)
        for key in range(100):
            index.insert(key, key)
        assert len(index) == 100
        assert index.get(99) == 99

    def test_duplicate_keys_chain(self):
        # Join-build semantics: duplicates coexist, newest first.
        index = ChainedIndex()
        index.insert(1, 10)
        index.insert(1, 20)
        assert index.get(1) == 20


class TestChainedStructure:
    def test_node_is_one_cache_line(self, keys):
        index = ChainedIndex(expected_size=len(keys))
        index.bulk_insert(keys, keys)
        assert index.stats.access_size == CACHE_LINE

    def test_chain_walks_cost_dependent_reads(self, keys):
        index = ChainedIndex(expected_size=len(keys))
        index.bulk_insert(keys, keys)
        index.bulk_probe(keys)
        assert index.stats.reads_per_probe >= 1.0

    def test_average_chain_length_reasonable(self, keys):
        index = ChainedIndex(expected_size=len(keys))
        index.bulk_insert(keys, keys)
        assert 1.0 <= index.average_chain_length < 3.0


class TestDashVsChainedTrafficContrast:
    """The core PMEM argument: Dash probes move one 256 B line where the
    chain walks multiple dependent 64 B lines (each of which a PMEM
    device amplifies to 256 B internally)."""

    def test_dash_fewer_reads_per_probe_than_chain_hops(self, keys):
        dash = DashIndex()
        dash.bulk_insert(keys, keys)
        chained = ChainedIndex(expected_size=len(keys))
        chained.bulk_insert(keys, keys)
        dash.bulk_probe(keys)
        chained.bulk_probe(keys)
        # Dash touches at most ~2 lines; chains average > 1 hop and each
        # hop is a dependent access.
        assert dash.stats.reads_per_probe <= 2.5
        assert chained.stats.reads_per_probe >= 1.0
