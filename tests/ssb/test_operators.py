"""Unit tests for the engine's relational operators."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.ssb.dbgen import generate
from repro.ssb.engine import operators
from repro.ssb.queries import Predicate, PredicateOp
from repro.ssb.storage import HANDCRAFTED_PMEM, HYRISE_PMEM


@pytest.fixture(scope="module")
def db():
    return generate(scale_factor=0.01, seed=3)


class TestFactScan:
    def test_row128_reads_whole_tuples(self, db):
        traffic = operators.fact_scan_traffic(
            db.lineorder, ["lo_revenue"], HANDCRAFTED_PMEM
        )
        assert traffic.seq_read_bytes == db.lineorder.n_rows * 128

    def test_columnar_reads_only_used_columns(self, db):
        traffic = operators.fact_scan_traffic(
            db.lineorder, ["lo_revenue", "lo_discount"], HYRISE_PMEM
        )
        expected = db.lineorder.column_bytes(["lo_revenue", "lo_discount"])
        assert traffic.seq_read_bytes == expected

    def test_cpu_charged_per_row(self, db):
        traffic = operators.fact_scan_traffic(db.lineorder, [], HANDCRAFTED_PMEM)
        assert traffic.cpu_tuples == db.lineorder.n_rows


class TestFilterMask:
    def test_empty_predicates_select_all(self, db):
        mask = operators.filter_mask(db.lineorder, ())
        assert mask.all()

    def test_conjunction(self, db):
        predicates = (
            Predicate("lo_discount", PredicateOp.BETWEEN, (1, 3)),
            Predicate("lo_quantity", PredicateOp.LT, 25),
        )
        mask = operators.filter_mask(db.lineorder, predicates)
        lo = db.lineorder
        expected = (
            (lo["lo_discount"] >= 1) & (lo["lo_discount"] <= 3)
            & (lo["lo_quantity"] < 25)
        )
        assert np.array_equal(mask, expected)


class TestBuildIndex:
    def test_dash_packs_attributes(self, db):
        join_index = operators.build_dimension_index(
            db.supplier, "s_suppkey", ("s_region",), HANDCRAFTED_PMEM
        )
        assert join_index.packed_attrs == ("s_region",)
        assert join_index.build_traffic.random_write_bytes > 0

    def test_chained_does_not_pack(self, db):
        join_index = operators.build_dimension_index(
            db.supplier, "s_suppkey", ("s_region",), HYRISE_PMEM
        )
        assert join_index.packed_attrs == ()

    def test_region_tagged_with_table(self, db):
        join_index = operators.build_dimension_index(
            db.part, "p_partkey", (), HANDCRAFTED_PMEM
        )
        assert join_index.build_traffic.region_table == "part"


class TestProbeDimension:
    def test_packed_probe_needs_no_gather(self, db):
        join_index = operators.build_dimension_index(
            db.supplier, "s_suppkey", ("s_region",), HANDCRAFTED_PMEM
        )
        keys = db.lineorder["lo_suppkey"][:1000]
        hit, attrs, records = operators.probe_dimension(
            join_index, keys, db.supplier, ("s_region",)
        )
        assert hit.all()  # all FKs resolve
        assert "s_region" in attrs
        assert len(records) == 1  # probe only, no gather

    def test_unpacked_probe_gathers(self, db):
        join_index = operators.build_dimension_index(
            db.supplier, "s_suppkey", (), HYRISE_PMEM
        )
        keys = db.lineorder["lo_suppkey"][:1000]
        hit, attrs, records = operators.probe_dimension(
            join_index, keys, db.supplier, ("s_region",)
        )
        assert hit.all()
        names = [r.name for r in records]
        assert any(n.startswith("gather(") for n in names)

    def test_gathered_values_correct(self, db):
        join_index = operators.build_dimension_index(
            db.supplier, "s_suppkey", (), HYRISE_PMEM
        )
        keys = db.lineorder["lo_suppkey"][:500]
        _, attrs, _ = operators.probe_dimension(
            join_index, keys, db.supplier, ("s_region",)
        )
        expected = db.supplier["s_region"][keys - 1]  # keys are 1-based/dense
        assert np.array_equal(attrs["s_region"], expected)

    def test_packed_values_match_gathered(self, db):
        packed_index = operators.build_dimension_index(
            db.supplier, "s_suppkey", ("s_region",), HANDCRAFTED_PMEM
        )
        keys = db.lineorder["lo_suppkey"][:500]
        _, packed_attrs, _ = operators.probe_dimension(
            packed_index, keys, db.supplier, ("s_region",)
        )
        expected = db.supplier["s_region"][keys - 1].astype(np.int64)
        assert np.array_equal(packed_attrs["s_region"], expected)

    def test_missing_packed_attr_rejected(self, db):
        join_index = operators.build_dimension_index(
            db.supplier, "s_suppkey", ("s_region",), HANDCRAFTED_PMEM
        )
        keys = db.lineorder["lo_suppkey"][:10]
        with pytest.raises(QueryError):
            operators.probe_dimension(
                join_index, keys, db.supplier, ("s_nation",)
            )


class TestGroupAggregate:
    def test_empty_input(self):
        result, traffic = operators.group_aggregate(
            [], np.empty(0, dtype=np.int64), intermediate_width=12
        )
        assert result.n_groups == 0
        assert traffic.cpu_tuples == 0

    def test_scalar_aggregate(self):
        measure = np.asarray([1, 2, 3], dtype=np.int64)
        result, _ = operators.group_aggregate([], measure, intermediate_width=8)
        assert result.as_dict() == {(): 6}

    def test_grouped_sums(self):
        keys = np.asarray([1, 2, 1, 2, 1])
        measure = np.asarray([10, 20, 30, 40, 50], dtype=np.int64)
        result, _ = operators.group_aggregate([keys], measure, intermediate_width=12)
        assert result.as_dict() == {(1,): 90, (2,): 60}

    def test_intermediate_materialisation_charged(self):
        keys = np.arange(1000)
        measure = np.ones(1000, dtype=np.int64)
        _, traffic = operators.group_aggregate([keys], measure, intermediate_width=12)
        assert traffic.seq_write_bytes == 12000
        assert traffic.seq_read_bytes == 12000

    def test_misaligned_columns_rejected(self):
        with pytest.raises(QueryError):
            operators.group_aggregate(
                [np.arange(3)], np.ones(4, dtype=np.int64), intermediate_width=8
            )


class TestMaterializeAndGather:
    def test_materialize_charges_both_directions(self):
        traffic = operators.materialize_positions(1000, "x")
        assert traffic.seq_write_bytes == 8000
        assert traffic.seq_read_bytes == 8000

    def test_fact_gather_is_random_into_fact_region(self):
        traffic = operators.fact_gather(500, column_bytes=1e9, label="lo_revenue")
        assert traffic.random_reads == 500
        assert traffic.random_read_size == 64
        assert traffic.region_table == "lineorder"
