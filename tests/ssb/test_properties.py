"""Property-based tests of the SSB components."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ssb import schema
from repro.ssb.dbgen import generate
from repro.ssb.engine import SsbExecutor
from repro.ssb.engine.operators import pack_values, unpack_values
from repro.ssb.hashindex import ChainedIndex, DashIndex
from repro.ssb.queries import ALL_QUERIES
from repro.ssb.storage import HANDCRAFTED_PMEM

_DB = generate(scale_factor=0.01, seed=9)
_EXECUTOR = SsbExecutor(_DB, HANDCRAFTED_PMEM)


key_arrays = st.lists(
    st.integers(min_value=-(2**40), max_value=2**40), min_size=1, max_size=300,
    unique=True,
)


class TestHashIndexProperties:
    @given(keys=key_arrays)
    @settings(max_examples=30, deadline=None)
    def test_dash_round_trip(self, keys):
        index = DashIndex()
        array = np.asarray(keys, dtype=np.int64)
        index.bulk_insert(array, array * 3)
        assert np.array_equal(index.bulk_probe(array), array * 3)
        assert len(index) == len(keys)

    @given(keys=key_arrays)
    @settings(max_examples=30, deadline=None)
    def test_chained_round_trip(self, keys):
        index = ChainedIndex(expected_size=len(keys))
        array = np.asarray(keys, dtype=np.int64)
        index.bulk_insert(array, array - 1)
        assert np.array_equal(index.bulk_probe(array), array - 1)

    @given(keys=key_arrays, probe=st.integers(min_value=2**41, max_value=2**42))
    @settings(max_examples=30, deadline=None)
    def test_dash_never_fabricates_hits(self, keys, probe):
        # Keys are bounded by 2**40; probes beyond that must miss.
        index = DashIndex()
        array = np.asarray(keys, dtype=np.int64)
        index.bulk_insert(array, array)
        assert index.get(probe, default=-99) == -99

    @given(keys=key_arrays)
    @settings(max_examples=20, deadline=None)
    def test_dash_traffic_monotone(self, keys):
        index = DashIndex()
        array = np.asarray(keys, dtype=np.int64)
        index.bulk_insert(array, array)
        before = index.stats.read_bytes
        index.bulk_probe(array)
        assert index.stats.read_bytes >= before + len(keys) * 0  # non-negative
        assert index.stats.probes == len(keys)


class TestPackingProperties:
    @given(
        positions=st.lists(
            st.integers(min_value=0, max_value=(1 << 24) - 1),
            min_size=1, max_size=200,
        ),
        attr_values=st.lists(
            st.integers(min_value=0, max_value=(1 << 20) - 1),
            min_size=1, max_size=200,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_pack_unpack_round_trip(self, positions, attr_values):
        n = min(len(positions), len(attr_values))
        pos = np.asarray(positions[:n], dtype=np.int64)
        attr = np.asarray(attr_values[:n], dtype=np.int64)
        packed = pack_values(pos, [attr, attr // 2])
        out_pos, out_attrs = unpack_values(packed, 2)
        assert np.array_equal(out_pos, pos)
        assert np.array_equal(out_attrs[0], attr)
        assert np.array_equal(out_attrs[1], attr // 2)

    def test_pack_rejects_oversized_position(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            pack_values(np.asarray([1 << 24], dtype=np.int64), [])

    def test_pack_rejects_oversized_attr(self):
        from repro.errors import QueryError

        with pytest.raises(QueryError):
            pack_values(
                np.asarray([0], dtype=np.int64),
                [np.asarray([1 << 20], dtype=np.int64)],
            )


class TestGeneratorProperties:
    @given(sf=st.floats(min_value=0.005, max_value=0.05), seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_referential_integrity(self, sf, seed):
        db = generate(scale_factor=sf, seed=seed)
        lo = db.lineorder
        assert lo["lo_custkey"].min() >= 1
        assert lo["lo_custkey"].max() <= db.customer.n_rows
        assert lo["lo_suppkey"].max() <= db.supplier.n_rows
        assert lo["lo_partkey"].max() <= db.part.n_rows
        assert set(np.unique(lo["lo_orderdate"]).tolist()) <= set(
            db.date["d_datekey"].tolist()
        )

    @given(sf=st.floats(min_value=0.005, max_value=0.05))
    @settings(max_examples=10, deadline=None)
    def test_cardinalities_match_schema(self, sf):
        db = generate(scale_factor=sf, seed=1)
        assert db.lineorder.n_rows == schema.lineorder_rows(sf)
        assert db.customer.n_rows == schema.customer_rows(sf)


class TestQueryInvariants:
    @pytest.mark.parametrize("name", [q.name for q in ALL_QUERIES])
    def test_group_sums_are_consistent(self, name):
        """The sum over groups equals the aggregate over qualifying rows,
        and group counts are bounded by the grouping key space."""
        query = next(q for q in ALL_QUERIES if q.name == name)
        result = _EXECUTOR.execute(query)
        total = sum(result.groups.values())
        assert result.qualifying_rows >= 0
        if result.qualifying_rows == 0:
            assert total == 0
            return
        if query.flight == 1:
            assert total == result.scalar
        assert result.n_groups <= max(result.qualifying_rows, 1)

    @pytest.mark.parametrize("name", [q.name for q in ALL_QUERIES])
    def test_execution_is_deterministic(self, name):
        query = next(q for q in ALL_QUERIES if q.name == name)
        first = _EXECUTOR.execute(query)
        second = _EXECUTOR.execute(query)
        assert first.groups == second.groups
        assert first.qualifying_rows == second.qualifying_rows

    def test_traffic_non_negative(self):
        for query in ALL_QUERIES:
            traffic = _EXECUTOR.execute(query).traffic
            for op in traffic.operators:
                assert op.seq_read_bytes >= 0
                assert op.random_reads >= 0
                assert op.cpu_tuples >= 0
