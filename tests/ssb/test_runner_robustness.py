"""Robustness of the SSB reproduction: seeds, scale factors, caching."""

import pytest

from repro.ssb.engine import SsbExecutor
from repro.ssb.dbgen import generate
from repro.ssb.queries import ALL_QUERIES, get_query
from repro.ssb.runner import SsbRunner, average_slowdown
from repro.ssb.storage import HANDCRAFTED_PMEM, HYRISE_PMEM


class TestSeedInvariance:
    """The reproduction's conclusions must not depend on the RNG seed."""

    def test_slowdown_stable_across_seeds(self):
        slowdowns = []
        for seed in (5, 17):
            runner = SsbRunner(measured_sf=0.02, seed=seed)
            fb = runner.figure14b()
            slowdowns.append(average_slowdown(fb["pmem"], fb["dram"]))
        assert slowdowns[0] == pytest.approx(slowdowns[1], rel=0.1)

    def test_traffic_stable_across_seeds(self):
        volumes = []
        for seed in (5, 17):
            db = generate(scale_factor=0.02, seed=seed)
            executor = SsbExecutor(db, HANDCRAFTED_PMEM)
            traffic = executor.execute(get_query("Q2.1")).traffic
            volumes.append(traffic.total_bytes)
        assert volumes[0] == pytest.approx(volumes[1], rel=0.1)


class TestScaleInvariance:
    """Traffic per fact row is scale-invariant (the extrapolation's
    premise), up to the log-growing part dimension."""

    def test_per_row_traffic_stable(self):
        per_row = []
        for sf in (0.02, 0.05):
            db = generate(scale_factor=sf, seed=5)
            executor = SsbExecutor(db, HANDCRAFTED_PMEM)
            traffic = executor.execute(get_query("Q3.1")).traffic
            per_row.append(traffic.total_bytes / db.lineorder.n_rows)
        assert per_row[0] == pytest.approx(per_row[1], rel=0.1)

    def test_predicted_time_roughly_linear_in_target_sf(self):
        runner = SsbRunner(measured_sf=0.02, seed=5)
        q = (get_query("Q2.1"),)
        t50 = runner.run(HANDCRAFTED_PMEM, target_sf=50, queries=q)
        t100 = runner.run(HANDCRAFTED_PMEM, target_sf=100, queries=q)
        ratio = t100.breakdowns["Q2.1"].seconds / t50.breakdowns["Q2.1"].seconds
        # Slightly sub/super-linear is fine (region residency changes).
        assert 1.6 < ratio < 2.5


class TestExecutorInternals:
    @pytest.fixture(scope="class")
    def db(self):
        return generate(scale_factor=0.02, seed=5)

    def test_dash_indexes_cached_across_queries(self, db):
        executor = SsbExecutor(db, HANDCRAFTED_PMEM)
        executor.execute(get_query("Q2.1"))
        builds_after_first = len(executor.build_traffic.operators)
        executor.execute(get_query("Q2.2"))
        builds_after_second = len(executor.build_traffic.operators)
        # Q2.2 needs the same (table, attrs) indexes as Q2.1 for part and
        # supplier; only genuinely new attribute sets trigger builds.
        assert builds_after_second <= builds_after_first + 1

    def test_chained_indexes_not_cached(self, db):
        executor = SsbExecutor(db, HYRISE_PMEM)
        a = executor.execute(get_query("Q2.1")).traffic
        b = executor.execute(get_query("Q2.1")).traffic
        builds_a = [op for op in a.operators if op.name.startswith("build-")]
        builds_b = [op for op in b.operators if op.name.startswith("build-")]
        assert builds_a and builds_b  # rebuilt every execution

    def test_all_queries_have_nonzero_results_at_sf002(self, db):
        # Guards the test scale factor: every query must keep qualifying
        # rows, or the shape assertions test nothing. The two-city
        # queries (Q3.3/Q3.4 select 2 of 250 cities on both sides) are
        # legitimately empty at this tiny scale.
        executor = SsbExecutor(db, HANDCRAFTED_PMEM)
        for query in ALL_QUERIES:
            if query.name in ("Q3.3", "Q3.4"):
                continue
            assert executor.execute(query).qualifying_rows > 0, query.name
