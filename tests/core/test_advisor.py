"""Tests for the placement advisor."""

import pytest

from repro.core import AccessProfile, PlacementAdvisor, WorkloadIntent
from repro.errors import ConfigurationError
from repro.memsim import DaxMode, PinningPolicy


@pytest.fixture(scope="module")
def advisor():
    return PlacementAdvisor()


class TestIntentValidation:
    def test_zero_threads_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadIntent(profile=AccessProfile.SCAN_HEAVY, threads_per_socket=0)

    def test_zero_sockets_rejected(self):
        with pytest.raises(ConfigurationError):
            WorkloadIntent(profile=AccessProfile.SCAN_HEAVY, sockets=0)


class TestRecommendations:
    def test_scan_heavy_defaults(self, advisor):
        rec = advisor.recommend(WorkloadIntent(profile=AccessProfile.SCAN_HEAVY))
        assert rec.pinning is PinningPolicy.CORES
        assert rec.dax_mode is DaxMode.DEVDAX
        assert rec.stripe_across_sockets
        assert rec.write_threads <= 8  # best practice 2
        assert rec.read_threads >= 8
        assert rec.expected_read_gbps > rec.expected_write_gbps

    def test_no_system_control_pins_to_numa(self, advisor):
        rec = advisor.recommend(
            WorkloadIntent(profile=AccessProfile.SCAN_HEAVY, full_system_control=False)
        )
        assert rec.pinning is PinningPolicy.NUMA_REGION

    def test_filesystem_requirement_forces_fsdax(self, advisor):
        rec = advisor.recommend(
            WorkloadIntent(profile=AccessProfile.JOIN_HEAVY, needs_filesystem=True)
        )
        assert rec.dax_mode is DaxMode.FSDAX
        assert any("BP7 waived" in r for r in rec.rationale)

    def test_mixed_profile_serializes_phases(self, advisor):
        rec = advisor.recommend(WorkloadIntent(profile=AccessProfile.MIXED))
        assert rec.serialize_read_write_phases
        assert 5 in rec.practices

    def test_ingest_profile_does_not_serialize(self, advisor):
        rec = advisor.recommend(WorkloadIntent(profile=AccessProfile.INGEST))
        assert not rec.serialize_read_write_phases

    def test_join_heavy_replicates_dimensions(self, advisor):
        rec = advisor.recommend(WorkloadIntent(profile=AccessProfile.JOIN_HEAVY))
        assert rec.replicate_small_tables

    def test_single_socket_never_stripes(self, advisor):
        rec = advisor.recommend(
            WorkloadIntent(profile=AccessProfile.JOIN_HEAVY, sockets=1)
        )
        assert not rec.stripe_across_sockets
        assert not rec.replicate_small_tables

    def test_thread_budget_respected(self, advisor):
        rec = advisor.recommend(
            WorkloadIntent(profile=AccessProfile.SCAN_HEAVY, threads_per_socket=8)
        )
        assert rec.read_threads <= 8
        assert rec.write_threads <= 8

    def test_write_granularity_respected(self, advisor):
        rec = advisor.recommend(
            WorkloadIntent(profile=AccessProfile.INGEST, min_write_granularity=4096)
        )
        assert rec.write_access_size >= 4096

    def test_describe_mentions_practices(self, advisor):
        rec = advisor.recommend(WorkloadIntent(profile=AccessProfile.SCAN_HEAVY))
        text = rec.describe()
        assert "BP2" in text
        assert "GB/s" in text

    def test_expected_bandwidths_match_model_limits(self, advisor):
        rec = advisor.recommend(WorkloadIntent(profile=AccessProfile.SCAN_HEAVY))
        assert rec.expected_read_gbps <= 40.5
        assert rec.expected_write_gbps <= 13.5
