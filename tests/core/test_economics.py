"""Tests for the §7 price/performance analysis."""

import pytest

from repro.core.economics import (
    PAPER_DRAM_PRICE,
    PAPER_PMEM_PRICE,
    MemoryPrice,
    breakeven_slowdown,
    compare,
    paper_comparison,
    provision,
)
from repro.errors import ConfigurationError
from repro.units import GIB, TIB


class TestPrices:
    def test_paper_pmem_module(self):
        assert PAPER_PMEM_PRICE.usd == 575.0
        assert PAPER_PMEM_PRICE.usd_per_gib == pytest.approx(575 / 128)

    def test_pmem_cheaper_per_gib(self):
        assert PAPER_PMEM_PRICE.usd_per_gib < PAPER_DRAM_PRICE.usd_per_gib

    def test_invalid_price(self):
        with pytest.raises(ConfigurationError):
            MemoryPrice(capacity=0, usd=1.0)
        with pytest.raises(ConfigurationError):
            MemoryPrice(capacity=GIB, usd=0.0)


class TestProvisioning:
    def test_paper_system(self):
        # 1.5 TB of PMEM = 12 x 128 GB DIMMs = ~$6,900 (§7).
        cost = provision(12 * 128 * GIB, PAPER_PMEM_PRICE)
        assert cost.modules == 12
        assert cost.usd == pytest.approx(6900.0)

    def test_paper_dram_equivalent(self):
        # §7: 1.5 TB of DRAM at $700 per 64 GB is ~$16,800.
        cost = provision(12 * 128 * GIB, PAPER_DRAM_PRICE)
        assert cost.modules == 24
        assert cost.usd == pytest.approx(16800.0)

    def test_rounds_up_to_whole_modules(self):
        cost = provision(100 * GIB, PAPER_PMEM_PRICE)
        assert cost.modules == 1

    def test_invalid_capacity(self):
        with pytest.raises(ConfigurationError):
            provision(0, PAPER_PMEM_PRICE)


class TestComparison:
    def test_paper_headline(self):
        result = paper_comparison()
        # §7: "i.e., 2.4x higher with the average SSB query performance
        # of DRAM being only 1.6x better than PMEM".
        assert result.price_ratio == pytest.approx(2.43, rel=0.02)
        assert result.pmem_wins
        assert result.performance_per_dollar_advantage > 1.4

    def test_dram_wins_when_slowdown_exceeds_price_ratio(self):
        result = compare(capacity=TIB, slowdown=5.3)  # the Hyrise slowdown
        assert not result.pmem_wins

    def test_breakeven(self):
        breakeven = breakeven_slowdown(12 * 128 * GIB)
        assert compare(12 * 128 * GIB, breakeven * 0.99).pmem_wins
        assert not compare(12 * 128 * GIB, breakeven * 1.01).pmem_wins

    def test_invalid_slowdown(self):
        with pytest.raises(ConfigurationError):
            compare(capacity=TIB, slowdown=0)

    def test_describe(self):
        text = paper_comparison().describe()
        assert "PMEM wins" in text
        assert "$6,900" in text

    def test_measured_slowdown_keeps_pmem_winning(self):
        # End-to-end: the reproduction's own measured slowdown must stay
        # below the break-even for the paper's system.
        from repro.ssb.runner import SsbRunner, average_slowdown

        runner = SsbRunner(measured_sf=0.02, seed=5)
        fb = runner.figure14b()
        measured = average_slowdown(fb["pmem"], fb["dram"])
        assert measured < breakeven_slowdown(12 * 128 * GIB)
