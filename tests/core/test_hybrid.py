"""Tests for the hybrid PMEM-DRAM placement planner (future work, §9)."""

import pytest

from repro.core.hybrid import (
    HybridPlanner,
    Structure,
    StructureKind,
    ssb_structures,
)
from repro.errors import ConfigurationError
from repro.memsim import MediaKind
from repro.units import GB, GIB


@pytest.fixture(scope="module")
def planner():
    return HybridPlanner()


def _index(name="index", size=2 * GIB, traffic=100 * GB):
    return Structure(
        name=name, size_bytes=size, traffic_bytes=traffic,
        kind=StructureKind.RANDOM, access_size=256,
    )


def _fact(size=70 * GIB, traffic=70 * GB):
    return Structure(
        name="fact", size_bytes=size, traffic_bytes=traffic,
        kind=StructureKind.SEQUENTIAL,
    )


class TestBenefit:
    def test_random_structures_benefit_more_per_byte(self, planner):
        # §5.2's argument: DRAM helps random access (~4x) more than
        # sequential scans (~2.5x); the index also moves more traffic
        # per byte of footprint.
        index = _index()
        fact = _fact()
        index_density = planner.benefit(index) / index.size_bytes
        fact_density = planner.benefit(fact) / fact.size_bytes
        assert index_density > fact_density

    def test_benefit_non_negative(self, planner):
        assert planner.benefit(_index(traffic=0)) == 0.0


class TestPlanning:
    def test_budget_prefers_indexes(self, planner):
        plan = planner.plan([_fact(), _index()], dram_budget=4 * GIB)
        assert plan.media_of("index") is MediaKind.DRAM
        assert plan.media_of("fact") is MediaKind.PMEM

    def test_zero_budget_keeps_everything_on_pmem(self, planner):
        plan = planner.plan([_fact(), _index()], dram_budget=0)
        assert plan.dram_used == 0
        assert plan.media_of("index") is MediaKind.PMEM

    def test_budget_respected(self, planner):
        structures = [
            _index("a", size=3 * GIB, traffic=50 * GB),
            _index("b", size=3 * GIB, traffic=40 * GB),
            _index("c", size=3 * GIB, traffic=30 * GB),
        ]
        plan = planner.plan(structures, dram_budget=7 * GIB)
        assert plan.dram_used <= 7 * GIB
        # The two highest-traffic indexes fit; the third does not.
        assert plan.media_of("a") is MediaKind.DRAM
        assert plan.media_of("b") is MediaKind.DRAM
        assert plan.media_of("c") is MediaKind.PMEM

    def test_total_seconds_saved_counts_dram_only(self, planner):
        plan = planner.plan([_index()], dram_budget=4 * GIB)
        assert plan.total_seconds_saved > 0
        empty = planner.plan([_index()], dram_budget=0)
        assert empty.total_seconds_saved == 0

    def test_duplicate_names_rejected(self, planner):
        with pytest.raises(ConfigurationError):
            planner.plan([_index("x"), _index("x")], dram_budget=GIB)

    def test_negative_budget_rejected(self, planner):
        with pytest.raises(ConfigurationError):
            planner.plan([_index()], dram_budget=-1)

    def test_unknown_structure_lookup(self, planner):
        plan = planner.plan([_index()], dram_budget=GIB)
        with pytest.raises(ConfigurationError):
            plan.media_of("nope")

    def test_describe(self, planner):
        plan = planner.plan([_fact(), _index()], dram_budget=4 * GIB)
        text = plan.describe()
        assert "DRAM" in text and "PMEM" in text


class TestSsbIntegration:
    def test_structures_derived_from_traffic(self):
        from repro.ssb.runner import SsbRunner

        runner = SsbRunner(measured_sf=0.02, seed=5)
        structures = ssb_structures(runner, target_sf=100.0)
        names = {s.name for s in structures}
        assert "lineorder (fact table)" in names
        assert any("part index" in n for n in names)
        fact = next(s for s in structures if "fact" in s.name)
        assert fact.kind is StructureKind.SEQUENTIAL
        assert fact.size_bytes > 50 * GB  # ~76.8 GB of 128 B rows at sf 100

    def test_planner_promotes_hot_indexes_first(self):
        from repro.ssb.runner import SsbRunner

        runner = SsbRunner(measured_sf=0.02, seed=5)
        structures = ssb_structures(runner, target_sf=100.0)
        planner = HybridPlanner()
        # A budget big enough for every index but not the fact table.
        index_bytes = sum(
            s.size_bytes for s in structures if s.kind is StructureKind.RANDOM
        )
        plan = planner.plan(structures, dram_budget=index_bytes)
        for placement in plan.placements:
            if placement.structure.kind is StructureKind.RANDOM:
                assert placement.media is MediaKind.DRAM
        assert plan.media_of("lineorder (fact table)") is MediaKind.PMEM
