"""Tests for the seven best practices of paper §7."""

import pytest

from repro.core import (
    BEST_PRACTICES,
    get_practice,
    practices_report,
    verify_practices,
)
from repro.memsim import BandwidthModel


@pytest.fixture(scope="module")
def model():
    return BandwidthModel()


class TestRegistry:
    def test_seven_practices(self):
        assert len(BEST_PRACTICES) == 7
        assert [p.number for p in BEST_PRACTICES] == list(range(1, 8))

    def test_lookup(self):
        assert get_practice(5).number == 5

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_practice(8)

    def test_every_insight_backs_some_practice(self):
        # Practices 1-6 condense insights 1-12 (practice 7 is the dax
        # recommendation, checked directly).
        covered = {n for p in BEST_PRACTICES for n in p.insight_numbers}
        assert covered == set(range(1, 13))

    def test_practice_statements_match_paper(self):
        assert "4-6" in get_practice(2).statement or "4 – 6" in get_practice(2).statement
        assert "devdax" in get_practice(7).statement


class TestAllPracticesHold:
    @pytest.mark.parametrize("number", range(1, 8))
    def test_practice_holds(self, model, number):
        results = verify_practices(model)
        assert results[number], f"best practice #{number} violated by the model"

    def test_report_renders_all(self, model):
        report = practices_report(model)
        assert report.count("HOLDS") == 7
        assert "VIOLATED" not in report


class TestPracticesAreFalsifiable:
    def test_broken_model_violates_practices(self):
        # The practices framework must be able to *fail*: on a device
        # where reads and writes barely interfere, practice 5 ("avoid
        # mixed workloads") no longer follows.
        import dataclasses

        from repro.memsim.calibration import paper_calibration

        cal = paper_calibration()
        broken = dataclasses.replace(
            cal,
            mixed=dataclasses.replace(
                cal.mixed,
                read_interference_coeff=1e-6,
                write_interference_coeff=1e-6,
            ),
        )
        model = BandwidthModel(calibration=broken)
        results = verify_practices(model)
        assert not results[5]
