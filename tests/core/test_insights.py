"""Tests for the twelve machine-checkable insights."""

import pytest

from repro.core import ALL_INSIGHTS, get_insight, verify_all
from repro.memsim import BandwidthModel


@pytest.fixture(scope="module")
def model():
    return BandwidthModel()


class TestRegistry:
    def test_twelve_insights(self):
        assert len(ALL_INSIGHTS) == 12
        assert [i.number for i in ALL_INSIGHTS] == list(range(1, 13))

    def test_lookup(self):
        insight = get_insight(5)
        assert insight.number == 5
        assert "stripe" in insight.statement.lower()

    def test_unknown_number(self):
        with pytest.raises(KeyError):
            get_insight(13)

    def test_sections_match_paper(self):
        # Insights 1-5 come from §3, 6-10 from §4, 11-12 from §5.
        for insight in ALL_INSIGHTS:
            if insight.number <= 5:
                assert insight.section.startswith("3.")
            elif insight.number <= 10:
                assert insight.section.startswith("4.")
            else:
                assert insight.section.startswith("5.")


class TestAllInsightsHold:
    """The headline reproduction claim: every insight is derivable from
    the mechanistic model, none is hard-coded."""

    @pytest.mark.parametrize("number", range(1, 13))
    def test_insight_holds(self, model, number):
        assert get_insight(number).check(model), (
            f"insight #{number} no longer holds in the model: "
            f"{get_insight(number).statement}"
        )

    def test_verify_all_returns_full_map(self, model):
        results = verify_all(model)
        assert set(results) == set(range(1, 13))
        assert all(results.values())

    def test_verify_all_default_model(self):
        assert all(verify_all().values())
