"""Tests for the calibration-sensitivity analysis."""

import pytest

from repro.core.sensitivity import (
    PERTURBED_FIELDS,
    SensitivityReport,
    analyze,
    perturb,
)
from repro.errors import ConfigurationError
from repro.memsim.calibration import paper_calibration


class TestPerturb:
    def test_scales_one_field(self):
        base = paper_calibration()
        out = perturb(base, "pmem", "seq_read_max", 1.1)
        assert out.pmem.seq_read_max == pytest.approx(44.0)
        assert out.pmem.seq_write_max == base.pmem.seq_write_max
        assert out.dram.seq_read_max == base.dram.seq_read_max

    def test_base_untouched(self):
        base = paper_calibration()
        perturb(base, "dram", "seq_read_max", 0.5)
        assert base.dram.seq_read_max == 100.0

    def test_invalid_factor(self):
        with pytest.raises(ConfigurationError):
            perturb(paper_calibration(), "pmem", "seq_read_max", 0.0)


class TestAnalyze:
    @pytest.fixture(scope="class")
    def report(self):
        return analyze(0.10)

    def test_all_insights_robust_at_10_percent(self, report):
        """The headline robustness claim: every conclusion survives a
        ±10% recalibration of every fitted constant."""
        assert report.robust_insights == set(range(1, 13))
        assert not report.fragile_insights

    def test_covers_both_directions(self, report):
        factors = {factor for _, factor in report.outcomes}
        assert factors == {0.9, 1.1}

    def test_admissible_count(self, report):
        assert len(report.outcomes) + len(report.rejected) == 2 * len(
            PERTURBED_FIELDS
        )

    def test_describe(self, report):
        text = report.describe()
        assert "robust insights" in text
        assert "±10%" in text

    def test_invalid_magnitude(self):
        with pytest.raises(ConfigurationError):
            analyze(0.0)
        with pytest.raises(ConfigurationError):
            analyze(1.5)

    def test_large_perturbations_get_rejected_or_flagged(self):
        # At ±60% some perturbations must either violate the physical
        # orderings (rejected) or break an insight — the analysis is not
        # vacuous.
        report = analyze(0.60)
        assert report.rejected or report.fragile_insights


class TestReportContainer:
    def test_empty_report(self):
        report = SensitivityReport(magnitude=0.1)
        assert report.robust_insights == set()
        assert report.fragile_insights == {}
