"""Tests for the configuration tuner."""

import pytest

from repro.core import TuningSpace, tune, tuned_matches_best_practices
from repro.errors import ConfigurationError
from repro.memsim import BandwidthModel, Layout, PinningPolicy
from repro.memsim.spec import Op, Pattern


@pytest.fixture(scope="module")
def model():
    return BandwidthModel()


class TestTuningSpace:
    def test_size(self):
        space = TuningSpace(
            access_sizes=(64, 4096),
            thread_counts=(1, 18),
            layouts=(Layout.INDIVIDUAL,),
            pinnings=(PinningPolicy.CORES,),
        )
        assert space.size == 4

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            TuningSpace(access_sizes=())


class TestTune:
    def test_read_optimum_saturates_device(self, model):
        result = tune(Op.READ, model=model)
        assert result.best_gbps == pytest.approx(40.0, rel=0.02)

    def test_write_optimum_matches_paper(self, model):
        # The tuner must rediscover the paper's "4-6 threads, 4 KB" rule.
        result = tune(Op.WRITE, model=model)
        assert result.best.spec.threads in (4, 6)
        assert result.best.spec.access_size == 4096
        assert result.best_gbps == pytest.approx(13.2, rel=0.05)

    def test_optima_obey_best_practices(self, model):
        assert tuned_matches_best_practices(tune(Op.READ, model=model))
        assert tuned_matches_best_practices(tune(Op.WRITE, model=model))

    def test_unpinned_never_optimal(self, model):
        space = TuningSpace(
            pinnings=(PinningPolicy.NONE, PinningPolicy.CORES),
        )
        result = tune(Op.READ, model=model, space=space)
        assert result.best.spec.pinning is PinningPolicy.CORES

    def test_candidates_enumerated(self, model):
        space = TuningSpace(
            access_sizes=(4096,),
            thread_counts=(4, 18),
            layouts=(Layout.INDIVIDUAL,),
            pinnings=(PinningPolicy.CORES,),
        )
        result = tune(Op.READ, model=model, space=space)
        assert len(result.candidates) == space.size

    def test_top_sorted_descending(self, model):
        result = tune(Op.WRITE, model=model)
        top = result.top(5)
        assert len(top) == 5
        assert all(a.gbps >= b.gbps for a, b in zip(top, top[1:]))

    def test_random_pattern_tuning(self, model):
        result = tune(
            Op.READ,
            model=model,
            space=TuningSpace(
                access_sizes=(64, 256, 4096),
                thread_counts=(4, 36),
                layouts=(Layout.INDIVIDUAL,),
                pinnings=(PinningPolicy.CORES,),
            ),
            pattern=Pattern.RANDOM,
        )
        # Insight 12: largest access wins for random workloads.
        assert result.best.spec.access_size == 4096

    def test_spec_overrides_fix_fields(self, model):
        model.warm_directory()
        result = tune(
            Op.READ,
            model=model,
            space=TuningSpace(
                access_sizes=(4096,),
                thread_counts=(18,),
                layouts=(Layout.INDIVIDUAL,),
                pinnings=(PinningPolicy.NUMA_REGION,),
            ),
            issuing_socket=0,
            target_socket=1,
        )
        # Far reads are UPI-bound: the optimum reflects the override.
        assert result.best_gbps == pytest.approx(33.0, rel=0.05)
