"""The simlint CLI: exit codes, JSON output, baseline writing."""

import json
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def write_project(tmp_path, body: str, config: str = "") -> Path:
    (tmp_path / "pyproject.toml").write_text(
        "[tool.simlint]\npaths = ['mod.py']\nbaseline = 'base.json'\n" + config
    )
    (tmp_path / "mod.py").write_text(body)
    return tmp_path / "pyproject.toml"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1\n")
        assert main(["--config", str(pyproject)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1.0 == 1.0\n")
        assert main(["--config", str(pyproject)]) == 1
        out = capsys.readouterr().out
        assert "SIM201" in out and "mod.py:1" in out

    def test_config_error_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.toml"
        assert main(["--config", str(missing)]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_path_exits_two(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1\n")
        assert main(["--config", str(pyproject), str(tmp_path / "gone")]) == 2


class TestJsonOutput:
    def test_json_payload_shape(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1.0 == 1.0\n")
        assert main(["--config", str(pyproject), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "SIM201"
        assert finding["snippet"] == "x = 1.0 == 1.0"


class TestRuleSelection:
    def test_select_restricts_rules(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1.0 == 1.0\ny = 2 * 1024**3\n")
        assert main(["--config", str(pyproject), "--select", "unit-literal"]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out and "SIM201" not in out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1\n")
        assert main(["--config", str(pyproject), "--select", "SIM999"]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "SIM001" in out and "float-equality" in out


class TestBaselineWorkflow:
    def test_write_baseline_then_clean(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1.0 == 1.0\n")
        assert main(["--config", str(pyproject), "--write-baseline"]) == 0
        entries = json.loads((tmp_path / "base.json").read_text())["entries"]
        assert [e["rule"] for e in entries] == ["SIM201"]
        assert main(["--config", str(pyproject)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_no_baseline_resurfaces_findings(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1.0 == 1.0\n")
        assert main(["--config", str(pyproject), "--write-baseline"]) == 0
        assert main(["--config", str(pyproject), "--no-baseline"]) == 1

    def test_stale_entries_reported_as_note(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1.0 == 1.0\n")
        assert main(["--config", str(pyproject), "--write-baseline"]) == 0
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert main(["--config", str(pyproject)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out
