"""The simlint CLI: exit codes, JSON output, baseline writing."""

import json
import subprocess
from pathlib import Path

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def write_project(tmp_path, body: str, config: str = "") -> Path:
    (tmp_path / "pyproject.toml").write_text(
        "[tool.simlint]\npaths = ['mod.py']\nbaseline = 'base.json'\n" + config
    )
    (tmp_path / "mod.py").write_text(body)
    return tmp_path / "pyproject.toml"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1\n")
        assert main(["--config", str(pyproject)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1.0 == 1.0\n")
        assert main(["--config", str(pyproject)]) == 1
        out = capsys.readouterr().out
        assert "SIM107" in out and "mod.py:1" in out

    def test_config_error_exits_two(self, tmp_path, capsys):
        missing = tmp_path / "nope.toml"
        assert main(["--config", str(missing)]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_path_exits_two(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1\n")
        assert main(["--config", str(pyproject), str(tmp_path / "gone")]) == 2


class TestJsonOutput:
    def test_json_payload_shape(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1.0 == 1.0\n")
        assert main(["--config", str(pyproject), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "SIM107"
        assert finding["snippet"] == "x = 1.0 == 1.0"


class TestRuleSelection:
    def test_select_restricts_rules(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1.0 == 1.0\ny = 2 * 1024**3\n")
        assert main(["--config", str(pyproject), "--select", "unit-literal"]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out and "SIM107" not in out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1\n")
        assert main(["--config", str(pyproject), "--select", "SIM999"]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "SIM001" in out and "float-equality" in out


class TestBaselineWorkflow:
    def test_write_baseline_then_clean(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1.0 == 1.0\n")
        assert main(["--config", str(pyproject), "--write-baseline"]) == 0
        entries = json.loads((tmp_path / "base.json").read_text())["entries"]
        assert [e["rule"] for e in entries] == ["SIM107"]
        assert main(["--config", str(pyproject)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_no_baseline_resurfaces_findings(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1.0 == 1.0\n")
        assert main(["--config", str(pyproject), "--write-baseline"]) == 0
        assert main(["--config", str(pyproject), "--no-baseline"]) == 1

    def test_stale_entries_reported_as_note(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1.0 == 1.0\n")
        assert main(["--config", str(pyproject), "--write-baseline"]) == 0
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert main(["--config", str(pyproject)]) == 0
        assert "stale baseline entry" in capsys.readouterr().out

    def test_strict_baseline_makes_stale_entries_an_error(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, "x = 1.0 == 1.0\n")
        assert main(["--config", str(pyproject), "--write-baseline"]) == 0
        (tmp_path / "mod.py").write_text("x = 1\n")
        assert main(["--config", str(pyproject), "--strict-baseline"]) == 1
        assert "stale baseline" in capsys.readouterr().err


class TestChangedScope:
    def _git(self, tmp_path, *argv):
        subprocess.run(
            ["git", "-C", str(tmp_path), *argv],
            check=True, capture_output=True,
        )

    def test_changed_reports_only_touched_files(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.simlint]\npaths = ['.']\n"
        )
        (tmp_path / "committed.py").write_text("x = 1.0 == 1.0\n")
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", "-A")
        self._git(tmp_path, "-c", "user.email=t@t", "-c", "user.name=t",
                  "commit", "-q", "--no-verify", "-m", "seed")
        (tmp_path / "fresh.py").write_text("y = 2.0 == 2.0\n")
        pyproject = str(tmp_path / "pyproject.toml")
        assert main(["--config", pyproject, "--changed", "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "fresh.py" in out
        assert "committed.py" not in out
