"""Fixture: transport reads without a frame-size bound (SIM110)."""

import asyncio


async def unlimited_streams():
    reader, writer = await asyncio.open_connection("localhost", 80)  # SIM110: no limit=
    server = await asyncio.start_server(lambda r, w: None, "localhost", 0)  # SIM110: no limit=
    raw = asyncio.StreamReader()  # SIM110: no limit=
    return reader, writer, server, raw


async def reads_to_eof(reader):
    return await reader.read()  # SIM110: zero-arg read


def accumulates_unbounded(sock):
    buf = b""
    while True:
        buf += sock.recv(4096)  # SIM110: no len(buf) bound
        if buf.endswith(b"\n"):
            return buf


async def bounded_streams(max_frame):
    reader, writer = await asyncio.open_connection(
        "localhost", 80, limit=max_frame
    )
    server = await asyncio.start_server(
        lambda r, w: None, "localhost", 0, limit=max_frame
    )
    chunk = await reader.read(4096)
    return reader, writer, server, chunk


def accumulates_bounded(sock, max_frame):
    buf = b""
    while len(buf) < max_frame:
        buf += sock.recv(4096)
        if buf.endswith(b"\n"):
            break
    return buf
