"""Fixture: per-point materialization on column batches (SIM108)."""

from repro.memsim.kernels import ResultColumns
from repro.sweep.service import EvaluationService

service = EvaluationService()
columns = service.evaluate_grid_columns(object(), [])
batch = ResultColumns()

total = 0.0
for view in columns.views():  # SIM108: materializes every point
    total += view.total_gbps

for row in batch:  # SIM108: row-by-row iteration of a batch
    total += row.total_gbps

for i in range(4):
    result = columns.view(i)  # SIM108: .view() inside a loop
    total += result.total_gbps

peaks = [v.total_gbps for v in batch.views()]  # SIM108: comprehension

# Not flagged: columnar reads, bulk row moves, and a single
# materialization at the API boundary outside any loop.
total += sum(columns.total_gbps())
for gbps in columns.gbps:
    total += gbps
batch.extend(columns)
boundary = columns.views()
one = columns.view(0)
