"""Deliberately bad fixture: bare-except (SIM301), silent-except (SIM302),
foreign-raise (SIM303).

Analyzed by tests/analysis/test_rules.py; never imported.
"""


def swallow_everything(work):
    try:
        return work()
    except:                             # SIM301 (and SIM302: body is pass)
        pass


def swallow_quietly(work):
    try:
        return work()
    except ValueError:
        pass                            # SIM302: silent pass


def wrong_taxonomy(value: int) -> None:
    if value < 0:
        raise RuntimeError("negative")  # SIM303: not a ReproError
