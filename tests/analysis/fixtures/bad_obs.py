"""Fixture: counter names that violate the obs catalogue convention."""


def emit(rec):
    rec.incr("badname")  # one segment
    rec.incr("memsim.app.read")  # no unit suffix
    rec.observe("memsim.Thing.wait_seconds", 0.5)  # upper-case segment
    rec.incr("memsim.app.read_parsecs")  # unknown unit
    rec.incr("memsim..read_bytes", 2.0)  # empty segment


def fine(rec, socket):
    rec.incr("memsim.app.read_bytes")  # valid
    rec.observe("memsim.imc.rpq_occupancy_ratio", 0.5)  # valid
    rec.incr(f"memsim.dimm.s{socket}.issued_bytes")  # dynamic: runtime-checked
    name = "not.checked_here"
    rec.incr(name)  # non-literal: runtime-checked
    rec.event("ssb.operator")  # events are not unit-suffixed counters
