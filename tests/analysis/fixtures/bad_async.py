"""Fixture: blocking calls inside async def bodies (SIM109)."""

import io
import socket
import subprocess
import time
from pathlib import Path


async def stalls_the_loop():
    time.sleep(0.25)  # SIM109: sync sleep in a coroutine
    with open("data.json") as handle:  # SIM109: sync file I/O
        handle.read(1024)
    io.open("data.json")  # SIM109: sync file I/O, dotted
    socket.create_connection(("localhost", 80))  # SIM109: sync socket
    subprocess.run(["true"])  # SIM109: sync subprocess
    Path("x").read_text()  # SIM109: sync Path I/O


async def clean_coroutine(sleeper):
    await sleeper(0.25)

    def callback():
        # Not flagged: nested sync functions may block elsewhere.
        time.sleep(0.25)

    return callback


def plain_function():
    # Not flagged: blocking is fine outside coroutines.
    time.sleep(0.25)
    return open("data.json")
