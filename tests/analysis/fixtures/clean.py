"""Clean fixture: code following every convention; must produce no findings.

Analyzed by tests/analysis/test_rules.py; never imported.
"""

import math

import numpy as np

from repro.errors import SimulationError
from repro.units import GIB, NS, seconds_for

REGION_BYTES = 2 * GIB
READ_LATENCY = 10 * NS


def transfer_seconds(chunk_bytes: int, rate_gbps: float) -> float:
    """Time in seconds to move ``chunk_bytes`` at ``rate_gbps`` GB/s."""
    if rate_gbps <= 0.0:
        raise SimulationError("bandwidth collapsed to zero")
    return seconds_for(chunk_bytes, rate_gbps)


def near_one(ratio: float) -> bool:
    """Whether a dimensionless ratio is within float noise of 1."""
    return math.isclose(ratio, 1.0)


def draw(seed: int, names: set[str]) -> list[str]:
    """Deterministic shuffle of ``names`` under ``seed``."""
    rng = np.random.default_rng(seed)
    ordered = sorted(names)
    rng.shuffle(ordered)
    return ordered
