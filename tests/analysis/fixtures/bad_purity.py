"""Deliberately bad fixture: mutable shared state (SIM103).

Analyzed by tests/analysis/test_rules.py; never imported.
"""

__all__ = ["Evaluator"]        # exempt: dunder

_CACHE = {}                    # SIM103: module-level dict literal
SEEN = set()                   # SIM103: module-level set() call
HISTORY: list[str] = []        # SIM103: annotated module-level list literal
SIZES = (64, 256, 4096)        # clean: immutable tuple
NAMES = frozenset({"a", "b"})  # clean: immutable frozenset


class Evaluator:
    results = []               # SIM103: class-level list literal
    by_label: dict = dict()    # SIM103: class-level dict() call
    limit = 4                  # clean: immutable scalar

    def evaluate(self, spec):
        local = {}             # clean: function-local containers are fine
        local[spec] = 1.0
        return local
