"""Fixture: per-call recomputation of MachineConfig-derived tables."""


def hot_path(self, config, spec):
    ways = self.topology.interleave_ways(0, spec.media)  # derived query
    cores = config.topology.physical_core_count(spec.issuing_socket)  # derived query
    sock = self.config.topology.socket(spec.target_socket)  # chained receiver
    return ways + cores + sock.socket_id


def bare_name(topology):
    return topology.socket_count()  # bare 'topology' receiver still fires


def fine(self, context, registry):
    ways = context.interleave_ways[(0, "pmem")]  # precomputed table: fine
    other = registry.socket(3)  # receiver is not a topology: fine
    topo = self.topology  # bare attribute read, no call: fine
    return ways + other + topo
