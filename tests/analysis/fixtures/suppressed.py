"""Fixture: every violation carries a suppression; must produce no findings.

Analyzed by tests/analysis/test_rules.py; never imported.
"""

EPSILON = 1e-9  # simlint: ignore[unit-literal] -- epsilon guard, not a unit
REGION = 2 * 1024**3  # simlint: ignore[SIM001] -- codes work too


def compare(a: float) -> bool:
    """Exact comparison, justified."""
    return a == 0.0  # simlint: ignore


def hoover(work):
    """Swallows everything, justified twice on one line."""
    try:
        return work()
    except:  # simlint: ignore[bare-except, silent-except]
        pass
