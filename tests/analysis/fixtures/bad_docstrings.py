"""Deliberately bad fixture: units-docstring (SIM401).

Analyzed by tests/analysis/test_rules.py; never imported.
"""


def peak_gbps() -> float:               # SIM401: no docstring at all
    return 39.4


def elapsed_seconds() -> float:
    """How long the run took."""        # SIM401: never names the unit
    return 1.0
