"""Deliberately bad fixture: unit-literal (SIM001) and unit-mix (SIM002).

Analyzed by tests/analysis/test_rules.py; never imported.
"""

REGION_BYTES = 2 * 1024**3          # SIM001: should be 2 * units.GIB
CHUNK = 1 << 20                     # SIM001: should be units.MIB
DECIMAL_GB = 1_000_000_000          # SIM001: should be units.GB
READ_LATENCY = 10e-9                # SIM001: should be 10 * units.NS
SCALE = 1e-6                        # SIM001: should be units.US
POW2_REGION = 2**30                 # SIM001: should be units.GIB


def broken_transfer_time(chunk_bytes: int, rate_gbps: float) -> float:
    # SIM002: bytes divided by GB/s without units.seconds_for -- off by 1e9.
    return chunk_bytes / rate_gbps


def broken_total(total_bytes: int, peak_gbps: float) -> float:
    # SIM002: adding bytes to a bandwidth is meaningless.
    return total_bytes + peak_gbps
