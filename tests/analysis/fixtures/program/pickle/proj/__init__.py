"""SIM202 fixture package: a boundary type pulling in a hostile nested one."""
