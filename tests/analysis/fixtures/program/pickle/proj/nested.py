"""Reached through ``JobSpec.payload``'s annotation."""

import threading
from dataclasses import dataclass


@dataclass
class Inner:
    name: str
    guard = threading.Lock()  # the cross-module positive
    quiet = threading.Lock()  # simlint: ignore[pickle-safety]
    weight: float = 1.0
