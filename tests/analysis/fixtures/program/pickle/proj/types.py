"""The type named in ``pickle-boundary``."""

from dataclasses import dataclass

from proj.nested import Inner


@dataclass
class JobSpec:
    label: str
    payload: Inner
    key = lambda spec: spec.label  # noqa: E731 — the direct positive
    retries: int = 3


@dataclass
class Standalone:
    """Not on the boundary and referenced by nothing that is."""

    on_done = lambda: None  # noqa: E731 — hostile but out of scope
