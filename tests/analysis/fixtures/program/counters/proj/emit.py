"""Emitters: one clean, one unknown, one suppressed, one f-string wildcard."""

PREFIX = "app"


def record(rec, value):
    rec.incr("app.good_count", value)


def record_unknown(rec, value):
    rec.incr("app.phantom_count", value)  # not in the catalogue


def record_quietly(rec, value):
    rec.incr("app.ghost_count", value)  # simlint: ignore[counter-drift]


def record_partition(rec, part, value):
    # ``p{part}`` is a partial-segment placeholder, so the name resolves
    # to the pattern 'app.*.part_count' and keeps the wildcard entry live.
    rec.observe(f"{PREFIX}.p{part}.part_count", value)
