"""SIM203 fixture package: a mini counter catalogue plus emitters."""
