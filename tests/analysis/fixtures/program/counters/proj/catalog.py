"""A miniature counter catalogue in the repo's shape."""


class CounterSpec:
    def __init__(self, name, doc=""):
        self.name = name
        self.doc = doc


CATALOG = (
    CounterSpec("app.good_count", "emitted by emit.record"),
    CounterSpec("app.*.part_count", "per-partition, emitted via f-string"),
    CounterSpec("app.dead_bytes", "nothing emits this any more"),
)
