"""The purity root. Clean itself; the escape hides in a callee."""

from proj import helpers


def evaluate(x):
    a = helpers.accumulate(x)
    b = helpers.pure_double(x)
    c = helpers.noted(x)
    return a + b + c


def unreachable_writer(x):
    # Impure, but not reachable from the root: must NOT be flagged.
    helpers.HISTORY.append(x)
    return x
