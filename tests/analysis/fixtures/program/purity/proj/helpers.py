"""Callees of the root: one escape, one clean, one suppressed."""

_CACHE = {}
HISTORY = []


def accumulate(x):
    _CACHE[x] = x  # the cross-module escape SIM201 must find
    return x


def pure_double(x):
    local = {}
    local[x] = x  # local mutation is fine
    return 2 * x


def noted(x):
    HISTORY.append(x)  # simlint: ignore[purity-escape]
    return x
