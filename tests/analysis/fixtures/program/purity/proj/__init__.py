"""SIM201 fixture package: one pure root, one escape two calls away."""
