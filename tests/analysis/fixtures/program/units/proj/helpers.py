"""A callee whose return value carries a unit tag but whose name does not."""


def window(t0_ns, t1_ns):
    return t1_ns - t0_ns
