"""SIM204 fixture package: unit tags flowing across a call boundary."""
