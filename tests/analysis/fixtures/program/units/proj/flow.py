"""Arithmetic that mixes the callee's ns return with local gib values."""

from proj import helpers


def mixed(t0_ns, t1_ns, size_gib):
    return helpers.window(t0_ns, t1_ns) + size_gib  # the cross-module positive


def consistent(a_ns, b_ns):
    return a_ns + b_ns  # same scale, fine


def hushed(t0_ns, t1_ns, size_gib):
    return helpers.window(t0_ns, t1_ns) + size_gib  # simlint: ignore[unit-flow-mix]
