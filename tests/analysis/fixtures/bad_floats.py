"""Deliberately bad fixture: float-equality (SIM107).

Analyzed by tests/analysis/test_rules.py; never imported.
"""


def exact_compare(media_bytes: float, total: float, count: int) -> bool:
    if media_bytes == 0.0:              # SIM107: float literal comparison
        return True
    if total / count != 1.0:            # SIM107: division result comparison
        return False
    return float(count) == total        # SIM107: float() call comparison
