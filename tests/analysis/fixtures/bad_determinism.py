"""Deliberately bad fixture: unseeded-random (SIM101) and set-iteration (SIM102).

Analyzed by tests/analysis/test_rules.py; never imported.
"""

import random
import time

import numpy as np


def entropy_everywhere():
    rng = np.random.default_rng()       # SIM101: no seed
    jitter = random.random()            # SIM101: process-global RNG
    shuffled = random.shuffle([1, 2])   # SIM101: process-global RNG
    started = time.time()               # SIM101: wall clock
    elapsed = time.perf_counter()       # SIM101: wall clock
    return rng, jitter, shuffled, started, elapsed


def order_dependent(results):
    for key in {"q1", "q2", "q3"}:      # SIM102: set literal iteration
        results.append(key)
    return [r for r in set(results)]    # SIM102: set() call iteration
