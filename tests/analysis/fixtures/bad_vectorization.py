"""Fixture: scalar loops over NumPy arrays (SIM106)."""

import numpy as np

values = np.zeros(16)

total = 0.0
for v in values:  # SIM106: element-wise iteration
    total += v

for i in range(len(values)):  # SIM106: index loop over an array
    total += values[i]

for x in np.arange(4.0):  # SIM106: loop over a NumPy call result
    total += x

j = 0
while values[j] < 3.0:  # SIM106: while stepping through an array
    j += 1

queue = [1, 2, 3]
while queue:
    queue.pop(0)  # SIM106: O(n^2) drain

# Not flagged: plain Python iteration, pop(0) outside a loop,
# pop() without an index, and comprehension-free array expressions.
plain = [1.0, 2.0, 3.0]
for p in plain:
    total += p
rest = [4, 5]
rest.pop(0)
rest.pop()
total += float(values.sum())
