"""The whole-program layer: SIM201-SIM204 fixture projects, the summary
cache, and cross-module name resolution.

Each fixture under ``fixtures/program/<pass>/`` is a self-contained mini
project with its own ``pyproject.toml`` that enables exactly one
interprocedural contract, and contains a positive, a negative and a
suppressed case for it. Tests run with ``use_cache=False`` so they never
create a ``.simlint-cache/`` inside the repo's test tree.
"""

import json
import textwrap
from pathlib import Path

from repro.analysis.config import load_config
from repro.analysis.program import build_program, summarize_module
from repro.analysis.program.cache import SummaryCache, content_key
from repro.analysis.runner import run_analysis

PROGRAM_FIXTURES = Path(__file__).parent / "fixtures" / "program"


def run_fixture(name: str, select: list[str]):
    config = load_config(explicit=PROGRAM_FIXTURES / name / "pyproject.toml")
    return run_analysis(None, config, select=select, use_cache=False)


class TestPurityEscape:
    def test_cross_module_escape_is_found(self):
        report = run_fixture("purity", select=["SIM201"])
        (finding,) = report.findings
        assert finding.rule == "SIM201"
        assert finding.path == "proj/helpers.py"
        assert "proj.helpers.accumulate" in finding.message
        assert "'_CACHE'" in finding.message
        # The witness path names the root the escape is reachable from.
        assert "proj.core.evaluate" in finding.message

    def test_unreachable_writer_is_not_flagged(self):
        report = run_fixture("purity", select=["SIM201"])
        assert not any("unreachable_writer" in f.message for f in report.findings)

    def test_local_mutation_is_not_flagged(self):
        report = run_fixture("purity", select=["SIM201"])
        assert not any("pure_double" in f.message for f in report.findings)

    def test_inline_suppression_is_honoured(self):
        report = run_fixture("purity", select=["SIM201"])
        assert report.suppressed == 1
        assert not any("HISTORY" in f.message for f in report.findings)


class TestPickleSafety:
    def test_direct_lambda_field_is_found(self):
        report = run_fixture("pickle", select=["SIM202"])
        lambdas = [f for f in report.findings if "lambda" in f.message]
        (finding,) = lambdas
        assert finding.path == "proj/types.py"
        assert "field 'key' of 'proj.types.JobSpec'" in finding.message

    def test_lock_reached_through_annotation_is_found(self):
        report = run_fixture("pickle", select=["SIM202"])
        locks = [f for f in report.findings if "lock" in f.message]
        (finding,) = locks
        assert finding.path == "proj/nested.py"
        assert "field 'guard' of 'proj.nested.Inner'" in finding.message
        # The message explains *why* Inner is on the boundary.
        assert "proj.types.JobSpec" in finding.message

    def test_class_off_the_boundary_is_not_flagged(self):
        report = run_fixture("pickle", select=["SIM202"])
        assert not any("Standalone" in f.message for f in report.findings)

    def test_inline_suppression_is_honoured(self):
        report = run_fixture("pickle", select=["SIM202"])
        assert report.suppressed == 1
        assert not any("'quiet'" in f.message for f in report.findings)


class TestCounterDrift:
    def test_unknown_emit_name_is_found(self):
        report = run_fixture("counters", select=["SIM203"])
        unknown = [f for f in report.findings if "phantom" in f.message]
        (finding,) = unknown
        assert finding.path == "proj/emit.py"
        assert "matches no catalogue entry" in finding.message

    def test_dead_catalogue_entry_is_found(self):
        report = run_fixture("counters", select=["SIM203"])
        dead = [f for f in report.findings if "dead entry" in f.message]
        (finding,) = dead
        assert finding.path == "proj/catalog.py"
        assert "app.dead_bytes" in finding.message

    def test_fstring_emit_keeps_wildcard_entry_live(self):
        report = run_fixture("counters", select=["SIM203"])
        assert not any("app.*.part_count" in f.message for f in report.findings)

    def test_literal_emit_matching_catalogue_is_clean(self):
        report = run_fixture("counters", select=["SIM203"])
        assert not any("app.good_count" in f.message for f in report.findings)

    def test_inline_suppression_is_honoured(self):
        report = run_fixture("counters", select=["SIM203"])
        assert report.suppressed == 1
        assert not any("ghost" in f.message for f in report.findings)


class TestUnitFlow:
    def test_cross_module_mix_is_found(self):
        report = run_fixture("units", select=["SIM204"])
        (finding,) = report.findings
        assert finding.path == "proj/flow.py"
        assert "'ns'" in finding.message and "'gib'" in finding.message
        assert "proj.flow.mixed" in finding.message

    def test_consistent_scales_are_clean(self):
        report = run_fixture("units", select=["SIM204"])
        assert not any("consistent" in f.message for f in report.findings)

    def test_inline_suppression_is_honoured(self):
        report = run_fixture("units", select=["SIM204"])
        assert report.suppressed == 1
        assert not any("hushed" in f.message for f in report.findings)


def summarize(source: str, relpath: str = "proj/mod.py"):
    import ast

    return summarize_module(ast.parse(textwrap.dedent(source)), relpath)


class TestSummaryCache:
    SOURCE = "def f(x_ns, y_ns):\n    return x_ns + y_ns\n"

    def test_roundtrip(self, tmp_path):
        cache = SummaryCache(tmp_path / "cache")
        summary = summarize(self.SOURCE)
        cache.put(self.SOURCE, "proj/mod.py", summary)
        loaded = cache.get(self.SOURCE, "proj/mod.py")
        assert loaded is not None
        assert loaded.module == summary.module
        assert loaded == summary
        assert cache.hits == 1

    def test_key_is_salted_with_relpath(self):
        # Same bytes at a different path are a different module.
        assert content_key(self.SOURCE, "proj/a.py") != content_key(
            self.SOURCE, "proj/b.py"
        )

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = SummaryCache(tmp_path / "cache")
        cache.put(self.SOURCE, "proj/mod.py", summarize(self.SOURCE))
        (entry,) = (tmp_path / "cache" / "summaries").glob("*.json")
        entry.write_text("{not json")
        assert cache.get(self.SOURCE, "proj/mod.py") is None
        assert cache.misses == 1

    def test_version_mismatch_is_a_miss(self, tmp_path):
        cache = SummaryCache(tmp_path / "cache")
        cache.put(self.SOURCE, "proj/mod.py", summarize(self.SOURCE))
        (entry,) = (tmp_path / "cache" / "summaries").glob("*.json")
        data = json.loads(entry.read_text())
        data["version"] = -1
        entry.write_text(json.dumps(data))
        assert cache.get(self.SOURCE, "proj/mod.py") is None

    def test_build_program_cold_then_warm(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.simlint]\npaths = ['mod.py']\n"
        )
        (tmp_path / "mod.py").write_text(self.SOURCE)
        config = load_config(explicit=tmp_path / "pyproject.toml")
        cold = build_program([tmp_path / "mod.py"], config, use_cache=True)
        assert (cold.cache_hits, cold.cache_misses) == (0, 1)
        warm = build_program([tmp_path / "mod.py"], config, use_cache=True)
        assert (warm.cache_hits, warm.cache_misses) == (1, 0)

    def test_content_change_invalidates(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.simlint]\npaths = ['mod.py']\n"
        )
        (tmp_path / "mod.py").write_text(self.SOURCE)
        config = load_config(explicit=tmp_path / "pyproject.toml")
        build_program([tmp_path / "mod.py"], config, use_cache=True)
        (tmp_path / "mod.py").write_text(self.SOURCE + "\nz = 1\n")
        edited = build_program([tmp_path / "mod.py"], config, use_cache=True)
        assert (edited.cache_hits, edited.cache_misses) == (0, 1)


class TestGraphResolution:
    def test_import_alias_resolves_across_modules(self):
        config = load_config(explicit=PROGRAM_FIXTURES / "purity" / "pyproject.toml")
        program = build_program(
            [PROGRAM_FIXTURES / "purity" / "proj"], config, use_cache=False
        )
        caller = program.functions["proj.core.evaluate"]
        resolved = program.resolve_call(caller, "helpers.accumulate")
        assert resolved == "proj.helpers.accumulate"

    def test_reachability_carries_a_witness_path(self):
        config = load_config(explicit=PROGRAM_FIXTURES / "purity" / "pyproject.toml")
        program = build_program(
            [PROGRAM_FIXTURES / "purity" / "proj"], config, use_cache=False
        )
        reach = program.reachable_from(("proj.core.evaluate",))
        assert reach["proj.helpers.accumulate"] == (
            "proj.core.evaluate",
            "proj.helpers.accumulate",
        )
        assert "proj.core.unreachable_writer" not in reach
