"""The autofix engine: exact-span rewrites, idempotence, clean output.

The contract under test: ``--fix`` applies only mechanical rewrites, the
result always parses, a second ``--fix`` run changes nothing, and the
fixed tree lints clean for the rules that were fixed.
"""

import ast
from pathlib import Path

import pytest

from repro.analysis.cli import main

FIXTURES = Path(__file__).parent / "fixtures"


def write_project(tmp_path, body: str) -> Path:
    (tmp_path / "pyproject.toml").write_text(
        "[tool.simlint]\npaths = ['mod.py']\n"
    )
    (tmp_path / "mod.py").write_text(body)
    return tmp_path / "pyproject.toml"


def run(pyproject: Path, *extra: str) -> int:
    return main(["--config", str(pyproject), "--no-cache", *extra])


class TestDryRun:
    BODY = "CAP = 4 * 1024**3\n"

    def test_prints_a_diff_and_leaves_the_file_alone(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, self.BODY)
        assert run(pyproject, "--fix", "--dry-run") == 1
        captured = capsys.readouterr()
        assert "--- a/mod.py" in captured.out
        assert "+++ b/mod.py" in captured.out
        assert "+CAP = 4 * units.GIB" in captured.out
        assert "would fix 1 finding(s)" in captured.err
        assert (tmp_path / "mod.py").read_text() == self.BODY

    def test_dry_run_without_fix_is_an_error(self, tmp_path, capsys):
        pyproject = write_project(tmp_path, self.BODY)
        assert run(pyproject, "--dry-run") == 2


class TestApply:
    def test_unit_literal_fix_adds_the_import_once(self, tmp_path, capsys):
        pyproject = write_project(
            tmp_path, "CAP = 4 * 1024**3\nWIN = 500e-9\n"
        )
        assert run(pyproject, "--fix") == 0
        fixed = (tmp_path / "mod.py").read_text()
        assert fixed.count("from repro import units") == 1
        assert "4 * units.GIB" in fixed
        assert "(500 * units.NS)" in fixed

    def test_set_iteration_fix_wraps_in_sorted(self, tmp_path, capsys):
        pyproject = write_project(
            tmp_path,
            "def scan(items):\n    out = []\n"
            "    for item in {3, 1, 2}:\n        out.append(item)\n"
            "    return out\n",
        )
        assert run(pyproject, "--fix") == 0
        assert "for item in sorted({3, 1, 2}):" in (tmp_path / "mod.py").read_text()

    def test_counter_typo_fix_rewrites_the_name(self, tmp_path, capsys):
        pyproject = write_project(
            tmp_path,
            "def report(rec, n):\n    rec.incr('app.flush_cnt', n)\n",
        )
        assert run(pyproject, "--fix") == 0
        assert "app.flush_count" in (tmp_path / "mod.py").read_text()

    def test_exit_code_reflects_the_post_fix_state(self, tmp_path, capsys):
        # One fixable finding plus one unfixable one: --fix applies the
        # rewrite but still exits 1 for what remains.
        pyproject = write_project(
            tmp_path,
            "CAP = 4 * 1024**3\nx = 1.0 == 2.0\n",
        )
        assert run(pyproject, "--fix") == 1
        fixed = (tmp_path / "mod.py").read_text()
        assert "units.GIB" in fixed
        assert "1.0 == 2.0" in fixed


BODIES = [
    "CAP = 4 * 1024**3\n",
    "WIN = 500e-9\nBUF = 64 * 1024**2\n",
    "def scan(items):\n    for item in {3, 1, 2}:\n        yield item\n",
    "def report(rec, n):\n    rec.incr('app.flush_cnt', n)\n",
    "def lat(rec, t):\n    rec.observe('app.wait_secs', t)\n",
]


class TestFixContract:
    @pytest.mark.parametrize("body", BODIES)
    def test_fixed_output_parses_and_lints_clean(self, tmp_path, capsys, body):
        pyproject = write_project(tmp_path, body)
        run(pyproject, "--fix")
        fixed = (tmp_path / "mod.py").read_text()
        ast.parse(fixed)  # must still be valid Python
        capsys.readouterr()
        assert run(pyproject) == 0

    @pytest.mark.parametrize("body", BODIES)
    def test_fix_is_idempotent(self, tmp_path, capsys, body):
        pyproject = write_project(tmp_path, body)
        run(pyproject, "--fix")
        once = (tmp_path / "mod.py").read_text()
        run(pyproject, "--fix")
        assert (tmp_path / "mod.py").read_text() == once
