"""Config loading, suppression parsing, baseline round-trips, registry."""

import json

import pytest

from repro.analysis import (
    Baseline,
    Finding,
    SimlintConfig,
    all_rules,
    checker_for,
    load_config,
    run_analysis,
)
from repro.analysis.suppressions import Suppressions
from repro.errors import AnalysisError, ReproError


def make_finding(path="src/x.py", line=3, rule="SIM107", snippet="a == 0.0"):
    return Finding(path=path, line=line, col=1, rule=rule,
                   name="float-equality", message="m", snippet=snippet)


class TestConfig:
    def test_defaults_without_pyproject(self, tmp_path):
        config = load_config(start=tmp_path)
        assert config.paths == ("src",)
        assert config.baseline is None

    def test_loads_block_with_dashed_keys(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.simlint]\n"
            'paths = ["lib"]\n'
            'determinism-paths = ["lib/sim"]\n'
            'baseline = "base.json"\n'
        )
        config = load_config(start=tmp_path)
        assert config.paths == ("lib",)
        assert config.determinism_paths == ("lib/sim",)
        assert config.baseline_path() == tmp_path / "base.json"

    def test_unknown_key_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[tool.simlint]\ntypo = 1\n")
        with pytest.raises(AnalysisError, match="unknown"):
            load_config(start=tmp_path)

    def test_non_list_value_rejected(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[tool.simlint]\npaths = 'src'\n")
        with pytest.raises(AnalysisError, match="list of strings"):
            load_config(start=tmp_path)

    def test_discovered_upward(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[tool.simlint]\npaths = ['a']\n")
        nested = tmp_path / "deep" / "deeper"
        nested.mkdir(parents=True)
        config = load_config(start=nested)
        assert config.root == tmp_path
        assert config.paths == ("a",)

    def test_analysis_error_is_repro_error(self):
        assert issubclass(AnalysisError, ReproError)


class TestSuppressions:
    def test_bare_ignore_silences_all_rules(self):
        supp = Suppressions.scan("x = 1  # simlint: ignore\n")
        rules = {r.code: r for r in all_rules()}
        assert supp.suppresses(make_finding(line=1), rules)

    def test_listed_rule_matches_name_or_code(self):
        source = (
            "a = 1  # simlint: ignore[float-equality]\n"
            "b = 2  # simlint: ignore[SIM107]\n"
            "c = 3  # simlint: ignore[unit-literal]\n"
        )
        supp = Suppressions.scan(source)
        rules = {r.code: r for r in all_rules()}
        assert supp.suppresses(make_finding(line=1), rules)
        assert supp.suppresses(make_finding(line=2), rules)
        assert not supp.suppresses(make_finding(line=3), rules)  # other rule

    def test_unrelated_lines_untouched(self):
        supp = Suppressions.scan("x = 1  # simlint: ignore\ny = 2\n")
        rules = {r.code: r for r in all_rules()}
        assert not supp.suppresses(make_finding(line=2), rules)


class TestBaseline:
    def test_round_trip(self, tmp_path):
        baseline = Baseline.from_findings([make_finding()], reason="legacy")
        path = tmp_path / "base.json"
        baseline.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == baseline.entries
        assert loaded.entries[0]["reason"] == "legacy"

    def test_split_matches_ignoring_line_numbers(self):
        baseline = Baseline.from_findings([make_finding(line=3)], reason="r")
        new, accepted = baseline.split([make_finding(line=99)])
        assert new == [] and len(accepted) == 1

    def test_split_is_count_aware(self):
        baseline = Baseline.from_findings([make_finding()], reason="r")
        duplicate = [make_finding(line=3), make_finding(line=8)]
        new, accepted = baseline.split(duplicate)
        assert len(new) == 1 and len(accepted) == 1

    def test_stale_entries_detected(self):
        baseline = Baseline.from_findings(
            [make_finding(), make_finding(path="src/gone.py")], reason="r"
        )
        stale = baseline.stale_entries([make_finding()])
        assert [e["path"] for e in stale] == ["src/gone.py"]

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text("not json")
        with pytest.raises(AnalysisError, match="not valid JSON"):
            Baseline.load(path)

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(AnalysisError, match="version"):
            Baseline.load(path)


class TestRegistry:
    def test_all_rules_are_registered(self):
        codes = {r.code for r in all_rules()}
        assert codes == {
            "SIM001", "SIM002", "SIM101", "SIM102", "SIM103", "SIM104",
            "SIM105", "SIM106", "SIM107", "SIM108", "SIM109", "SIM110",
            "SIM201", "SIM202", "SIM203", "SIM204", "SIM301", "SIM302",
            "SIM303", "SIM401",
        }

    def test_lookup_by_name_and_code(self):
        assert checker_for("float-equality")[0].code == "SIM107"
        assert checker_for("SIM107")[0].name == "float-equality"

    def test_unknown_rule_rejected(self):
        with pytest.raises(AnalysisError, match="unknown rule"):
            checker_for("SIM999")


class TestRunAnalysis:
    def test_select_and_disable(self, tmp_path):
        (tmp_path / "bad.py").write_text("x = 2 * 1024**3\ny = 1.0 == 1.0\n")
        config = SimlintConfig(root=tmp_path, paths=("bad.py",))
        only_units = run_analysis(config=config, select=["unit-literal"])
        assert {f.rule for f in only_units.findings} == {"SIM001"}
        without_units = run_analysis(config=config, disable=["unit-literal"])
        assert {f.rule for f in without_units.findings} == {"SIM107"}

    def test_missing_path_raises(self, tmp_path):
        config = SimlintConfig(root=tmp_path, paths=("nowhere",))
        with pytest.raises(AnalysisError, match="no such file"):
            run_analysis(config=config)

    def test_baseline_applied(self, tmp_path):
        (tmp_path / "bad.py").write_text("x = 1.0 == 1.0\n")
        config = SimlintConfig(root=tmp_path, paths=("bad.py",),
                               baseline="base.json")
        dirty = run_analysis(config=config)
        assert dirty.exit_code == 1
        Baseline.from_findings(dirty.findings, reason="legacy").save(
            tmp_path / "base.json"
        )
        clean = run_analysis(config=config)
        assert clean.exit_code == 0
        assert len(clean.baselined) == 1
