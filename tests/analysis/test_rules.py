"""Every simlint rule fires on its deliberately-bad fixture and stays
silent on the clean one."""

from pathlib import Path

from repro.analysis import SimlintConfig, analyze_file

FIXTURES = Path(__file__).parent / "fixtures"

#: Config anchored at the fixtures directory: default unit-literal
#: allowlist (no fixture matches it) and determinism rules everywhere.
CONFIG = SimlintConfig(root=FIXTURES)


def run_fixture(name: str):
    findings, suppressed = analyze_file(FIXTURES / name, CONFIG)
    return findings, suppressed


def codes(findings) -> set[str]:
    return {f.rule for f in findings}


class TestUnitRules:
    def test_unit_literal_fires_on_every_shape(self):
        findings, _ = run_fixture("bad_units.py")
        literal_lines = {f.line for f in findings if f.rule == "SIM001"}
        # 1024**3, 1 << 20, 1_000_000_000, 10e-9, 1e-6, 2**30
        assert literal_lines == {6, 7, 8, 9, 10, 11}

    def test_unit_literal_suggests_units_names(self):
        findings, _ = run_fixture("bad_units.py")
        messages = " ".join(f.message for f in findings if f.rule == "SIM001")
        for suggestion in ("units.GIB", "units.MIB", "units.GB",
                           "units.NS", "units.US"):
            assert suggestion in messages

    def test_unit_mix_fires_on_div_and_add(self):
        findings, _ = run_fixture("bad_units.py")
        mixes = [f for f in findings if f.rule == "SIM002"]
        assert len(mixes) == 2
        assert {f.line for f in mixes} == {16, 21}

    def test_access_size_1024_is_not_flagged(self, tmp_path):
        target = tmp_path / "sizes.py"
        target.write_text("SIZES = (64, 256, 1024, 4096)\n")
        findings, _ = analyze_file(target, SimlintConfig(root=tmp_path))
        assert findings == []


class TestDeterminismRules:
    def test_unseeded_random_fires(self):
        findings, _ = run_fixture("bad_determinism.py")
        unseeded = [f for f in findings if f.rule == "SIM101"]
        assert len(unseeded) == 5
        messages = " ".join(f.message for f in unseeded)
        assert "default_rng" in messages
        assert "wall clock" in messages

    def test_set_iteration_fires(self):
        findings, _ = run_fixture("bad_determinism.py")
        assert len([f for f in findings if f.rule == "SIM102"]) == 2

    def test_scope_confines_determinism_rules(self):
        scoped = SimlintConfig(root=FIXTURES, determinism_paths=("memsim/",))
        findings, _ = analyze_file(FIXTURES / "bad_determinism.py", scoped)
        assert not codes(findings) & {"SIM101", "SIM102"}


class TestPurityRule:
    def test_mutable_shared_state_fires_on_every_shape(self):
        findings, _ = run_fixture("bad_purity.py")
        flagged = [f for f in findings if f.rule == "SIM103"]
        # module: {} / set() / annotated []; class: [] / dict()
        assert len(flagged) == 5
        messages = " ".join(f.message for f in flagged)
        assert "module-level" in messages
        assert "class-level" in messages
        assert "Evaluator.results" in messages

    def test_dunders_and_immutables_exempt(self):
        findings, _ = run_fixture("bad_purity.py")
        messages = " ".join(f.message for f in findings)
        assert "__all__" not in messages
        assert "SIZES" not in messages
        assert "NAMES" not in messages

    def test_function_locals_not_flagged(self, tmp_path):
        target = tmp_path / "ok.py"
        target.write_text(
            "def evaluate(specs):\n"
            "    acc = {}\n"
            "    for spec in specs:\n"
            "        acc[spec] = 1.0\n"
            "    return acc\n"
        )
        findings, _ = analyze_file(target, SimlintConfig(root=tmp_path))
        assert findings == []

    def test_scope_confines_purity_rule(self):
        scoped = SimlintConfig(root=FIXTURES, determinism_paths=("memsim/",))
        findings, _ = analyze_file(FIXTURES / "bad_purity.py", scoped)
        assert "SIM103" not in codes(findings)


class TestFloatRule:
    def test_float_equality_fires_on_every_shape(self):
        findings, _ = run_fixture("bad_floats.py")
        assert len([f for f in findings if f.rule == "SIM107"]) == 3

    def test_ordered_comparison_not_flagged(self, tmp_path):
        target = tmp_path / "ok.py"
        target.write_text("def f(x):\n    return x <= 0.0 or x > 1.0\n")
        findings, _ = analyze_file(target, SimlintConfig(root=tmp_path))
        assert findings == []


class TestExceptionRules:
    def test_all_three_rules_fire(self):
        findings, _ = run_fixture("bad_exceptions.py")
        assert {"SIM301", "SIM302", "SIM303"} <= codes(findings)

    def test_taxonomy_and_idiomatic_raises_allowed(self, tmp_path):
        target = tmp_path / "ok.py"
        target.write_text(
            "from repro.errors import SimulationError\n"
            "def f():\n"
            "    raise SimulationError('x')\n"
            "def g(key):\n"
            "    raise KeyError(key)\n"
        )
        findings, _ = analyze_file(target, SimlintConfig(root=tmp_path))
        assert findings == []


class TestDocstringRule:
    def test_fires_on_missing_and_unitless_docstrings(self):
        findings, _ = run_fixture("bad_docstrings.py")
        by_line = {f.line: f for f in findings if f.rule == "SIM401"}
        assert set(by_line) == {7, 11}
        assert "no docstring" in by_line[7].message
        assert "never names the unit" in by_line[11].message

    def test_private_helpers_exempt(self, tmp_path):
        target = tmp_path / "ok.py"
        target.write_text("def _scratch_gbps():\n    return 1.0\n")
        findings, _ = analyze_file(target, SimlintConfig(root=tmp_path))
        assert findings == []


class TestObsRules:
    def test_counter_name_fires_on_every_violation_shape(self):
        findings, _ = run_fixture("bad_obs.py")
        bad = [f for f in findings if f.rule == "SIM104"]
        assert {f.line for f in bad} == {5, 6, 7, 8, 9}

    def test_messages_name_the_offending_counter(self):
        findings, _ = run_fixture("bad_obs.py")
        messages = " ".join(f.message for f in findings if f.rule == "SIM104")
        assert "'badname'" in messages
        assert "unit suffix" in messages

    def test_valid_dynamic_and_event_names_not_flagged(self):
        findings, _ = run_fixture("bad_obs.py")
        assert all(f.line < 12 for f in findings if f.rule == "SIM104")


class TestHoistingRules:
    def test_context_derivable_fires_on_topology_queries(self):
        findings, _ = run_fixture("bad_hoisting.py")
        bad = [f for f in findings if f.rule == "SIM105"]
        assert {f.line for f in bad} == {5, 6, 7, 12}

    def test_message_points_at_eval_context(self):
        findings, _ = run_fixture("bad_hoisting.py")
        messages = " ".join(f.message for f in findings if f.rule == "SIM105")
        assert "EvalContext" in messages
        assert "'interleave_ways'" in messages

    def test_precomputed_tables_and_foreign_receivers_not_flagged(self):
        findings, _ = run_fixture("bad_hoisting.py")
        assert all(f.line < 14 for f in findings if f.rule == "SIM105")

    def test_topology_and_context_modules_exempt(self, tmp_path):
        scoped = SimlintConfig(root=tmp_path, determinism_paths=("repro/memsim",))
        source = "def rates(self):\n    return self.topology.interleave_ways(0, 'pmem')\n"
        exempt = tmp_path / "repro" / "memsim"
        exempt.mkdir(parents=True)
        for name in ("topology.py", "context.py"):
            (exempt / name).write_text(source)
            findings, _ = analyze_file(exempt / name, scoped)
            assert findings == [], name
        (exempt / "evaluation.py").write_text(source)
        findings, _ = analyze_file(exempt / "evaluation.py", scoped)
        assert [f.rule for f in findings] == ["SIM105"]

    def test_out_of_scope_paths_not_flagged(self, tmp_path):
        scoped = SimlintConfig(root=tmp_path, determinism_paths=("repro/memsim",))
        target = tmp_path / "repro" / "experiments"
        target.mkdir(parents=True)
        probe = target / "driver.py"
        probe.write_text("def go(model):\n    return model.topology.socket(0)\n")
        findings, _ = analyze_file(probe, scoped)
        assert findings == []


class TestVectorizationRules:
    def test_scalar_loop_fires_on_every_shape(self):
        findings, _ = run_fixture("bad_vectorization.py")
        bad = [f for f in findings if f.rule == "SIM106"]
        # array iteration, range(len(...)), np-call result, while
        # subscript, pop(0) in a loop
        assert {f.line for f in bad} == {8, 11, 14, 18, 23}

    def test_messages_name_the_array_and_the_fix(self):
        findings, _ = run_fixture("bad_vectorization.py")
        messages = " ".join(f.message for f in findings if f.rule == "SIM106")
        assert "'values'" in messages
        assert "array expression" in messages
        assert "deque.popleft" in messages

    def test_plain_python_loops_not_flagged(self):
        findings, _ = run_fixture("bad_vectorization.py")
        assert all(f.line <= 23 for f in findings if f.rule == "SIM106")

    def test_out_of_scope_paths_not_flagged(self, tmp_path):
        scoped = SimlintConfig(
            root=tmp_path, vector_paths=("repro/memsim/kernels",)
        )
        source = (
            "import numpy as np\n"
            "a = np.zeros(4)\n"
            "s = 0.0\n"
            "for v in a:\n"
            "    s += v\n"
        )
        outside = tmp_path / "repro" / "experiments"
        outside.mkdir(parents=True)
        (outside / "driver.py").write_text(source)
        findings, _ = analyze_file(outside / "driver.py", scoped)
        assert findings == []
        inside = tmp_path / "repro" / "memsim" / "kernels"
        inside.mkdir(parents=True)
        (inside / "analytic.py").write_text(source)
        findings, _ = analyze_file(inside / "analytic.py", scoped)
        assert [f.rule for f in findings] == ["SIM106"]


class TestPointMaterializationRule:
    def test_fires_on_every_shape(self):
        findings, _ = run_fixture("bad_materialization.py")
        bad = [f for f in findings if f.rule == "SIM108"]
        # .views() iteration, batch iteration, .view() in a loop body,
        # .views() in a comprehension
        assert {f.line for f in bad} == {11, 14, 18, 21}

    def test_messages_name_the_batch_and_the_fix(self):
        findings, _ = run_fixture("bad_materialization.py")
        messages = " ".join(f.message for f in findings if f.rule == "SIM108")
        assert "'columns'" in messages
        assert "'batch'" in messages
        assert "append_from" in messages
        assert "API boundary" in messages

    def test_boundary_materialization_not_flagged(self):
        findings, _ = run_fixture("bad_materialization.py")
        # Module-level .views()/.view(0) at the API boundary (lines 29-30)
        # and columnar reads are sanctioned.
        assert all(f.line <= 21 for f in findings if f.rule == "SIM108")

    def test_tuple_unpack_tracks_the_batch_position(self, tmp_path):
        source = (
            "from repro.memsim.kernels import evaluate_batch_columns\n"
            "columns, emit = evaluate_batch_columns(ctx, specs, state)\n"
            "labels, out = runner.run_columns(grid)\n"
            "for v in columns.views():\n"
            "    pass\n"
            "for v in out.views():\n"
            "    pass\n"
            "for label in labels:\n"
            "    pass\n"
        )
        probe = tmp_path / "probe.py"
        probe.write_text(source)
        findings, _ = analyze_file(probe, SimlintConfig(root=tmp_path))
        assert [(f.rule, f.line) for f in findings if f.rule == "SIM108"] == [
            ("SIM108", 4),
            ("SIM108", 6),
        ]

    def test_out_of_scope_paths_not_flagged(self, tmp_path):
        scoped = SimlintConfig(root=tmp_path, vector_paths=("repro/sweep",))
        source = (
            "columns = service.evaluate_grid_columns(cfg, points)\n"
            "for v in columns.views():\n"
            "    pass\n"
        )
        outside = tmp_path / "repro" / "experiments"
        outside.mkdir(parents=True)
        (outside / "driver.py").write_text(source)
        findings, _ = analyze_file(outside / "driver.py", scoped)
        assert findings == []
        inside = tmp_path / "repro" / "sweep"
        inside.mkdir(parents=True)
        (inside / "service.py").write_text(source)
        findings, _ = analyze_file(inside / "service.py", scoped)
        assert [f.rule for f in findings] == ["SIM108"]


class TestAsyncBlockingRule:
    def test_fires_on_every_shape(self):
        findings, _ = run_fixture("bad_async.py")
        bad = [f for f in findings if f.rule == "SIM109"]
        # time.sleep, open, io.open, socket.create_connection,
        # subprocess.run, Path.read_text
        assert {f.line for f in bad} == {11, 12, 14, 15, 16, 17}

    def test_messages_name_the_coroutine_and_the_fix(self):
        findings, _ = run_fixture("bad_async.py")
        messages = " ".join(f.message for f in findings if f.rule == "SIM109")
        assert "'stalls_the_loop'" in messages
        assert "injected sleep" in messages
        assert "asyncio.open_connection" in messages
        assert "asyncio.create_subprocess_exec" in messages

    def test_sync_code_and_nested_defs_not_flagged(self):
        findings, _ = run_fixture("bad_async.py")
        # The nested callback (line 25) and plain_function (lines 31-32)
        # may block; only the coroutine's own statements count.
        assert all(f.line <= 17 for f in findings if f.rule == "SIM109")

    def test_only_sim109_fires_on_the_fixture(self):
        findings, _ = run_fixture("bad_async.py")
        assert codes(findings) == {"SIM109"}

    def test_out_of_scope_paths_not_flagged(self, tmp_path):
        scoped = SimlintConfig(root=tmp_path, serve_paths=("repro/serve",))
        source = (
            "import time\n"
            "async def handler():\n"
            "    time.sleep(0.25)\n"
        )
        outside = tmp_path / "repro" / "experiments"
        outside.mkdir(parents=True)
        (outside / "driver.py").write_text(source)
        findings, _ = analyze_file(outside / "driver.py", scoped)
        assert findings == []
        inside = tmp_path / "repro" / "serve"
        inside.mkdir(parents=True)
        (inside / "server.py").write_text(source)
        findings, _ = analyze_file(inside / "server.py", scoped)
        assert [f.rule for f in findings] == ["SIM109"]


class TestTransportRule:
    def test_fires_on_every_shape(self):
        findings, _ = run_fixture("bad_transport.py")
        bad = [f for f in findings if f.rule == "SIM110"]
        # open_connection, start_server, StreamReader (no limit=),
        # zero-arg .read(), unbounded recv accumulation loop
        assert {f.line for f in bad} == {7, 8, 9, 14, 20}

    def test_bounded_shapes_not_flagged(self):
        findings, _ = run_fixture("bad_transport.py")
        # bounded_streams / accumulates_bounded (lines 25+) pass a
        # limit=, a read size, or check len(buf) — all clean.
        assert all(f.line < 25 for f in findings)

    def test_messages_name_the_bound_to_add(self):
        findings, _ = run_fixture("bad_transport.py")
        messages = " ".join(f.message for f in findings if f.rule == "SIM110")
        assert "limit=" in messages
        assert "max frame size" in messages
        assert "len(buf)" in messages

    def test_only_sim110_fires_on_the_fixture(self):
        findings, _ = run_fixture("bad_transport.py")
        assert codes(findings) == {"SIM110"}

    def test_out_of_scope_paths_not_flagged(self, tmp_path):
        scoped = SimlintConfig(
            root=tmp_path,
            transport_paths=("repro/serve", "repro/sweep/cluster"),
        )
        source = (
            "import asyncio\n"
            "async def dial(host, port):\n"
            "    return await asyncio.open_connection(host, port)\n"
        )
        outside = tmp_path / "repro" / "experiments"
        outside.mkdir(parents=True)
        (outside / "driver.py").write_text(source)
        findings, _ = analyze_file(outside / "driver.py", scoped)
        assert findings == []
        inside = tmp_path / "repro" / "sweep" / "cluster"
        inside.mkdir(parents=True)
        (inside / "protocol.py").write_text(source)
        findings, _ = analyze_file(inside / "protocol.py", scoped)
        assert [f.rule for f in findings] == ["SIM110"]


class TestCleanAndSuppressed:
    def test_clean_fixture_has_no_findings(self):
        findings, suppressed = run_fixture("clean.py")
        assert findings == []
        assert suppressed == 0

    def test_suppressions_silence_by_name_code_and_bare(self):
        findings, suppressed = run_fixture("suppressed.py")
        assert findings == []
        assert suppressed == 5  # SIM001 x2, SIM107, SIM301, SIM302

    def test_parse_error_reported_as_finding(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        findings, _ = analyze_file(target, SimlintConfig(root=tmp_path))
        assert [f.rule for f in findings] == ["SIM000"]
