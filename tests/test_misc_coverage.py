"""Assorted coverage of small public surfaces not exercised elsewhere."""

import pytest

from repro.errors import ConfigurationError, ExperimentError, WorkloadError


class TestMixedOutcome:
    def test_retention_defaults_when_alone_is_zero(self):
        from repro.memsim.mixed import MixedOutcome

        outcome = MixedOutcome(
            read_gbps=1.0, write_gbps=1.0, read_alone_gbps=0.0, write_alone_gbps=0.0
        )
        assert outcome.read_retention == 1.0
        assert outcome.write_retention == 1.0
        assert outcome.total_gbps == 2.0


class TestSsbRunContainer:
    def test_empty_run_average_rejected(self):
        from repro.ssb.runner import SsbRun
        from repro.ssb.storage import HANDCRAFTED_PMEM

        run = SsbRun(profile=HANDCRAFTED_PMEM, target_sf=1.0)
        with pytest.raises(ConfigurationError):
            _ = run.average_seconds

    def test_flight_seconds_sums_members(self):
        from repro.ssb.runner import SsbRunner
        from repro.ssb.storage import HANDCRAFTED_PMEM

        runner = SsbRunner(measured_sf=0.02, seed=5)
        run = runner.run(HANDCRAFTED_PMEM, target_sf=10)
        qf1 = run.flight_seconds(1)
        members = [run.breakdowns[n].seconds for n in ("Q1.1", "Q1.2", "Q1.3")]
        assert qf1 == pytest.approx(sum(members))


class TestFig08Helpers:
    def test_boomerang_cells_threshold(self):
        from repro.experiments.fig08 import boomerang_cells

        rows = {"4": {"64": 12.0, "4096": 9.0}, "36": {"64": 11.0, "4096": 3.0}}
        hot = boomerang_cells(rows, threshold=10.0)
        assert hot == {(4, 64), (36, 64)}


class TestReportMain:
    def test_report_prints_markdown(self, capsys):
        from repro.experiments.report import main

        main()
        out = capsys.readouterr().out
        assert "# Experiments" in out
        assert "## Summary" in out


class TestTrafficDescribe:
    def test_describe_lists_operators(self):
        from repro.ssb.dbgen import generate
        from repro.ssb.engine import SsbExecutor
        from repro.ssb.queries import get_query
        from repro.ssb.storage import HANDCRAFTED_PMEM

        db = generate(scale_factor=0.01, seed=2)
        traffic = SsbExecutor(db, HANDCRAFTED_PMEM).execute(get_query("Q2.1")).traffic
        text = traffic.describe()
        assert "fact-scan" in text
        assert "probe(part)" in text

    def test_scaled_rejects_nonpositive(self):
        from repro.ssb.engine.traffic import OperatorTraffic

        with pytest.raises(Exception):
            OperatorTraffic(name="x").scaled(0)


class TestInsightStatements:
    def test_statements_quote_the_paper(self):
        from repro.core import ALL_INSIGHTS

        # Spot-check a few verbatim fragments from the paper's insight
        # boxes (they anchor the reproduction to the text).
        statements = {i.number: i.statement for i in ALL_INSIGHTS}
        assert "4 KB chunks" in statements[1]
        assert "hyperthreaded reads" in statements[2]
        assert "Serialize PMEM access" in statements[11]


class TestWorkloadPackageSurface:
    def test_paper_constants_exported(self):
        from repro.workloads import (
            PAPER_ACCESS_SIZES,
            PAPER_THREAD_COUNTS,
            PAPER_WRITE_THREAD_COUNTS,
        )

        assert 4096 in PAPER_ACCESS_SIZES
        assert 18 in PAPER_THREAD_COUNTS
        assert 6 in PAPER_WRITE_THREAD_COUNTS

    def test_sweep_grid_rejects_unknown_op(self):
        from repro.memsim.spec import Op
        from repro.workloads.sequential import numa_locality_sweep

        with pytest.raises((WorkloadError, AttributeError, ValueError, TypeError)):
            numa_locality_sweep("not-an-op")  # type: ignore[arg-type]


class TestExperimentErrorPaths:
    def test_result_unit_defaults(self):
        from repro.experiments.result import ExperimentResult

        result = ExperimentResult(exp_id="x", title="t")
        assert result.unit == "GB/s"
        assert result.worst_ratio_error == 0.0

    def test_zero_paper_value_guard(self):
        from repro.experiments.result import MetricComparison

        with pytest.raises(ExperimentError):
            _ = MetricComparison(metric="m", paper=0.0, measured=1.0).ratio
