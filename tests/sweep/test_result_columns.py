"""Property tests for the columnar result path (ResultColumns).

The SoA refactor's contract, pinned here with seeded random grids:

* lazy views materialized off a column batch are **bit-identical** to
  scalar :meth:`EvaluationService.evaluate` results, on every backend
  (serial / thread / process / vector, with and without a process pool);
* recorder snapshots of a columnar run match the per-point path;
* batches round-trip the v2 disk-cache payload and the pickle boundary
  float-for-float (the view cache never travels);
* :class:`~repro.errors.GridPointError` names the failing point and
  carries the partial batch, inline and across the process pool.
"""

import json
import pickle
import random

import pytest

from repro.errors import GridPointError
from repro.memsim import DirectoryState, Op, StreamSpec, paper_config
from repro.memsim.kernels import COUNTER_COLUMNS, ResultColumns
from repro.memsim.kernels.columns import assemble
from repro.obs import CountersRecorder
from repro.sweep import DiskCache, EvaluationService, SweepRunner
from repro.sweep.cache import (
    _canonical,
    block_digest,
    columns_from_payload,
    columns_to_payload,
)
from repro.workloads.grids import SweepGrid, SweepPoint

BACKENDS = [
    pytest.param("serial", 1, id="serial"),
    pytest.param("thread", 2, id="thread"),
    pytest.param("process", 2, id="process"),
    pytest.param("vector", 1, id="vector"),
    pytest.param("vector", 2, id="vector-procpool"),
]


def random_grid(seed: int, n: int = 12) -> SweepGrid:
    """Seeded mix of eligible near points and fallback far points."""
    rng = random.Random(seed)
    points = []
    for i in range(n):
        op = rng.choice((Op.READ, Op.WRITE))
        spec = StreamSpec(
            op=op,
            threads=rng.choice((1, 2, 4, 8, 18, 36)),
            access_size=rng.choice((64, 256, 4096, 65536)),
            issuing_socket=0,
            target_socket=1 if rng.random() < 0.3 else 0,
        )
        points.append(
            SweepPoint(label=f"p{i}-{op.value}", params={"i": i}, streams=(spec,))
        )
    return SweepGrid(name=f"random-{seed}", points=tuple(points))


def results_identical(a, b) -> bool:
    return (
        a.total_gbps == b.total_gbps
        and [(s.spec, s.gbps, s.solo_gbps, s.notes) for s in a.streams]
        == [(s.spec, s.gbps, s.solo_gbps, s.notes) for s in b.streams]
        and a.counters == b.counters
        and a.directory_after == b.directory_after
    )


class TestBitIdentityAcrossBackends:
    @pytest.mark.parametrize("backend,jobs", BACKENDS)
    @pytest.mark.parametrize("seed", [0, 1])
    def test_views_match_scalar_evaluate(self, backend, jobs, seed):
        grid = random_grid(seed)
        config = paper_config()
        labels, columns = SweepRunner(
            EvaluationService(memoize=False), backend=backend, jobs=jobs
        ).run_columns(grid)
        assert labels == [point.label for point in grid]
        assert len(columns) == len(grid)
        oracle = EvaluationService(memoize=False)
        for i, point in enumerate(grid):
            expected = oracle.evaluate(config, point.streams)
            assert results_identical(columns.view(i), expected), point.label
            assert columns.point_total_gbps(i) == expected.total_gbps

    @pytest.mark.parametrize("backend,jobs", BACKENDS)
    def test_batches_equal_across_backends(self, backend, jobs):
        grid = random_grid(7)
        _, reference = SweepRunner(
            EvaluationService(memoize=False), backend="serial"
        ).run_columns(grid)
        _, columns = SweepRunner(
            EvaluationService(memoize=False), backend=backend, jobs=jobs
        ).run_columns(grid)
        assert columns == reference

    def test_warm_directory_identity(self):
        config = paper_config()
        warm = DirectoryState.warm(config.topology)
        grid = random_grid(3)
        _, columns = SweepRunner(
            EvaluationService(memoize=False), backend="vector"
        ).run_columns(grid, config=config, directory=warm)
        oracle = EvaluationService(memoize=False)
        for i, point in enumerate(grid):
            expected = oracle.evaluate(config, point.streams, warm)
            assert results_identical(columns.view(i), expected), point.label


class TestRecorderParity:
    def test_columnar_snapshot_matches_serial(self):
        grid = random_grid(11)
        serial_rec, column_rec = CountersRecorder(), CountersRecorder()
        SweepRunner(
            EvaluationService(memoize=False), backend="serial", recorder=serial_rec
        ).run(grid)
        SweepRunner(
            EvaluationService(memoize=False), backend="vector", recorder=column_rec
        ).run_columns(grid)
        serial_snap, column_snap = serial_rec.snapshot(), column_rec.snapshot()
        assert serial_snap["counters"] == column_snap["counters"]
        assert serial_snap["events"] == column_snap["events"]
        serial_hist = serial_snap["histograms"]["sweep.point.wall_seconds"]
        column_hist = column_snap["histograms"]["sweep.point.wall_seconds"]
        assert serial_hist["count"] == column_hist["count"] == len(grid)


class TestDiskCacheRoundTrip:
    def test_payload_round_trips_bit_identically(self):
        grid = random_grid(5)
        _, columns = SweepRunner(
            EvaluationService(memoize=False), backend="vector"
        ).run_columns(grid)
        digests = [f"d{i:02d}" for i in range(len(columns))]
        payload = columns_to_payload(columns, digests)
        # _canonical is exactly what DiskCache writes to the block file.
        wire = json.loads(_canonical(payload))
        assert wire["digests"] == digests
        decoded = columns_from_payload(wire)
        assert decoded == columns
        assert decoded.total_gbps() == columns.total_gbps()

    def test_v2_cache_serves_bit_identical_rows(self, tmp_path):
        grid = random_grid(9)
        config = paper_config()
        points = [point.streams for point in grid]
        first = EvaluationService(disk_cache=DiskCache(tmp_path))
        original = first.evaluate_grid_columns(config, points)
        second = EvaluationService(disk_cache=DiskCache(tmp_path))
        restored = second.evaluate_grid_columns(config, points)
        assert second.stats.misses == 0
        assert restored == original

    def test_concurrent_shard_merges_lose_no_entries(self, tmp_path):
        """Writers merging one shard union entries instead of racing.

        Regression: shards are shared files, and an unlocked
        read-merge-write let the last of two concurrent pool workers
        silently drop the other's new entries — a cold ``--jobs N`` run
        would then miss points on the warm rerun.
        """
        import threading

        grid = random_grid(4, n=4)
        _, columns = SweepRunner(
            EvaluationService(memoize=False), backend="vector"
        ).run_columns(grid)
        cache = DiskCache(tmp_path)
        # All digests share one shard prefix, the contended case.
        digests = [f"aa{worker:02d}{put:02d}" for worker in range(4) for put in range(8)]

        def hammer(worker: int) -> None:
            for put in range(8):
                row = (worker + put) % len(columns)
                one = ResultColumns()
                one.append_from(columns, row)
                cache.put_columns([f"aa{worker:02d}{put:02d}"], one)

        threads = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        fresh = DiskCache(tmp_path)
        missing = [digest for digest in digests if fresh.get_ref(digest) is None]
        assert missing == []

    def test_block_digest_is_order_sensitive(self):
        assert block_digest(["a", "b"]) != block_digest(["b", "a"])
        assert block_digest(["a", "b"]) == block_digest(["a", "b"])


class TestPickleBoundary:
    def test_round_trip_drops_the_view_cache(self):
        grid = random_grid(2, n=6)
        _, columns = SweepRunner(
            EvaluationService(memoize=False), backend="vector"
        ).run_columns(grid)
        cached_view = columns.view(3)  # populate the lazy view cache
        shipped = pickle.loads(pickle.dumps(columns))
        assert shipped == columns
        assert shipped._views == [None] * len(columns)
        assert results_identical(shipped.view(3), cached_view)

    def test_views_are_cached_per_batch_not_shared(self):
        grid = random_grid(2, n=4)
        _, columns = SweepRunner(
            EvaluationService(memoize=False), backend="vector"
        ).run_columns(grid)
        assert columns.view(1) is columns.view(1)
        copy = pickle.loads(pickle.dumps(columns))
        assert copy.view(1) is not columns.view(1)


class TestBatchAssembly:
    def _results(self, n: int = 4):
        grid = random_grid(13, n=n)
        service = EvaluationService(memoize=False)
        return [
            service.evaluate(paper_config(), point.streams) for point in grid
        ]

    def test_from_results_round_trips_views(self):
        results = self._results()
        columns = ResultColumns.from_results(results)
        assert len(columns) == len(results)
        for view, original in zip(columns.views(), results):
            assert results_identical(view, original)

    def test_append_from_copies_rows_bit_identically(self):
        results = self._results()
        source = ResultColumns.from_results(results)
        picked = ResultColumns()
        for row in (2, 0):
            picked.append_from(source, row)
        assert results_identical(picked.view(0), results[2])
        assert results_identical(picked.view(1), results[0])

    def test_extend_and_assemble_concatenate(self):
        results = self._results(6)
        left = ResultColumns.from_results(results[:2])
        right = ResultColumns.from_results(results[2:])
        merged = ResultColumns()
        merged.extend(left)
        merged.extend(right)
        assert merged == ResultColumns.from_results(results)
        assert assemble([left, right]) == merged

    def test_counter_columns_cover_perf_counters(self):
        results = self._results(1)
        columns = ResultColumns.from_results(results)
        counters = columns.view(0).counters
        for name in COUNTER_COLUMNS:
            assert getattr(counters, name) == getattr(results[0].counters, name)

    def test_annotating_a_view_does_not_corrupt_the_batch(self):
        results = self._results(2)
        columns = ResultColumns.from_results(results)
        view = columns.view(0)
        view.counters.note("scribbled by a consumer")
        assert columns.counter_notes[0] == tuple(results[0].counters.notes)
        fresh = pickle.loads(pickle.dumps(columns))
        assert "scribbled by a consumer" not in fresh.view(0).counters.notes


class TestGridPointErrorPartial:
    def _poisoned(self) -> SweepGrid:
        good = StreamSpec(op=Op.READ, threads=4, access_size=4096)
        bad = StreamSpec(op=Op.READ, threads=4, access_size=4096, target_socket=9)
        return SweepGrid(
            name="poisoned",
            points=(
                SweepPoint(label="ok-0", params={}, streams=(good,)),
                SweepPoint(label="ok-1", params={}, streams=(good.with_(threads=8),)),
                SweepPoint(label="bad", params={}, streams=(bad,)),
                SweepPoint(label="ok-3", params={}, streams=(good.with_(threads=2),)),
            ),
        )

    @pytest.mark.parametrize("jobs", [1, 2], ids=["inline", "procpool"])
    def test_partial_batch_holds_the_completed_prefix(self, jobs):
        grid = self._poisoned()
        runner = SweepRunner(
            EvaluationService(memoize=False), backend="vector", jobs=jobs
        )
        with pytest.raises(GridPointError) as excinfo:
            runner.run_columns(grid)
        error = excinfo.value
        assert error.index == 2
        assert error.label == "bad"
        assert error.grid == "poisoned"
        assert isinstance(error.partial, ResultColumns)
        oracle = EvaluationService(memoize=False)
        config = paper_config()
        for i in range(len(error.partial)):
            expected = oracle.evaluate(config, grid.points[i].streams)
            assert results_identical(error.partial.view(i), expected)

    def test_error_pickles_with_attribution(self):
        original = ValueError("socket 9 does not exist")
        partial = ResultColumns.from_results(
            [EvaluationService(memoize=False).evaluate(
                paper_config(), (StreamSpec(op=Op.READ, threads=4, access_size=4096),)
            )]
        )
        error = GridPointError(
            2, original, label="bad", grid="poisoned", partial=partial
        )
        shipped = pickle.loads(pickle.dumps(error))
        assert shipped.index == 2
        assert shipped.label == "bad"
        assert shipped.grid == "poisoned"
        assert str(shipped) == str(error)
        assert shipped.partial == partial
