"""EvaluationService: caching is invisible except in the stats."""

import pytest

from repro.errors import ConfigurationError
from repro.memsim import DirectoryState, Op, StreamSpec, paper_config
from repro.sweep import DiskCache, EvaluationService, default_service, set_default_service
from repro.sweep.cache import request_digest

NEAR_READ = StreamSpec(op=Op.READ, threads=18, access_size=4096)
FAR_READ = StreamSpec(
    op=Op.READ, threads=8, access_size=4096, issuing_socket=0, target_socket=1
)
FAR_WRITE = StreamSpec(
    op=Op.WRITE, threads=8, access_size=4096, issuing_socket=0, target_socket=1
)


def results_identical(a, b) -> bool:
    return (
        a.total_gbps == b.total_gbps
        and [s.gbps for s in a.streams] == [s.gbps for s in b.streams]
        and a.counters == b.counters
        and a.directory_after == b.directory_after
    )


class TestMemoization:
    def test_cached_equals_uncached_bit_identical(self):
        config = paper_config()
        cached = EvaluationService()
        uncached = EvaluationService(memoize=False)
        for streams in ((NEAR_READ,), (FAR_READ,), (FAR_WRITE, NEAR_READ)):
            for state in (DirectoryState.cold(), DirectoryState.warm(config.topology)):
                warm_hit = cached.evaluate(config, streams, state)  # may be a hit
                raw = uncached.evaluate(config, streams, state)
                assert results_identical(warm_hit, raw)
        assert uncached.stats.hits == 0

    def test_repeat_is_a_hit(self):
        service = EvaluationService()
        first = service.evaluate(paper_config(), (NEAR_READ,))
        second = service.evaluate(paper_config(), (NEAR_READ,))
        assert (service.stats.hits, service.stats.misses) == (1, 1)
        assert results_identical(first, second)

    def test_hits_return_independent_copies(self):
        service = EvaluationService()
        first = service.evaluate(paper_config(), (NEAR_READ,))
        second = service.evaluate(paper_config(), (NEAR_READ,))
        second.counters.note("annotated by caller")
        assert "annotated by caller" not in first.counters.notes

    def test_different_config_misses(self):
        from repro.memsim import MachineConfig

        service = EvaluationService()
        service.evaluate(paper_config(), (NEAR_READ,))
        service.evaluate(MachineConfig(prefetcher_enabled=False), (NEAR_READ,))
        assert service.stats.misses == 2


class TestNormalization:
    def test_near_only_shares_entry_across_directory_states(self):
        config = paper_config()
        service = EvaluationService()
        cold = service.evaluate(config, (NEAR_READ,), DirectoryState.cold())
        warm = service.evaluate(
            config, (NEAR_READ,), DirectoryState.warm(config.topology)
        )
        assert (service.stats.hits, service.stats.misses) == (1, 1)
        assert cold.total_gbps == warm.total_gbps
        # directory_after still reflects each caller's full input state.
        assert cold.directory_after == DirectoryState.cold()
        assert warm.directory_after == DirectoryState.warm(config.topology)

    def test_far_read_warmth_is_part_of_the_key(self):
        config = paper_config()
        service = EvaluationService()
        cold = service.evaluate(config, (FAR_READ,), DirectoryState.cold())
        warm = service.evaluate(
            config, (FAR_READ,), DirectoryState.warm(config.topology)
        )
        assert service.stats.misses == 2
        assert cold.total_gbps < warm.total_gbps

    def test_irrelevant_warm_pairs_do_not_split_the_key(self):
        config = paper_config()
        service = EvaluationService()
        service.evaluate(config, (FAR_READ,), DirectoryState.cold())
        # (1, 0) warmth is unobservable by a 0->1 read: still a hit.
        service.evaluate(config, (FAR_READ,), DirectoryState(frozenset({(1, 0)})))
        assert (service.stats.hits, service.stats.misses) == (1, 1)


class TestDiskCache:
    def test_round_trip_across_services(self, tmp_path):
        config = paper_config()
        first = EvaluationService(disk_cache=DiskCache(tmp_path))
        original = first.evaluate(config, (FAR_READ,), DirectoryState.cold())
        second = EvaluationService(disk_cache=DiskCache(tmp_path))
        restored = second.evaluate(config, (FAR_READ,), DirectoryState.cold())
        assert second.stats.disk_hits == 1
        assert results_identical(original, restored)

    def test_corrupt_entry_recomputed(self, tmp_path):
        config = paper_config()
        service = EvaluationService(disk_cache=DiskCache(tmp_path))
        service.evaluate(config, (NEAR_READ,))
        digest = request_digest(config, (NEAR_READ,), DirectoryState.cold())
        shard = tmp_path / "index" / f"{digest[:2]}.json"
        shard.write_text("not json")
        fresh = EvaluationService(disk_cache=DiskCache(tmp_path))
        fresh.evaluate(config, (NEAR_READ,))
        assert (fresh.stats.disk_hits, fresh.stats.misses) == (0, 1)

    def test_stats_describe_mentions_disk(self, tmp_path):
        EvaluationService(disk_cache=DiskCache(tmp_path)).evaluate(
            paper_config(), (NEAR_READ,)
        )
        reloaded = EvaluationService(disk_cache=DiskCache(tmp_path))
        reloaded.evaluate(paper_config(), (NEAR_READ,))
        text = reloaded.stats.describe()
        assert "1 hits / 0 misses" in text
        assert "1 served from disk" in text


class TestDefaultService:
    def test_install_and_restore(self):
        fresh = EvaluationService()
        previous = set_default_service(fresh)
        try:
            assert default_service() is fresh
        finally:
            set_default_service(previous)
        assert default_service() is not fresh

    def test_invalid_jobs_rejected(self):
        from repro.sweep import SweepRunner

        with pytest.raises(ConfigurationError):
            SweepRunner(jobs=0)

    def test_lazy_init_is_race_free(self):
        import threading

        from repro.sweep import service as service_module

        previous = set_default_service(None)
        barrier = threading.Barrier(8)
        seen: list[EvaluationService] = []
        lock = threading.Lock()

        def grab() -> None:
            barrier.wait()  # line every thread up on the first call
            instance = default_service()
            with lock:
                seen.append(instance)

        try:
            threads = [threading.Thread(target=grab) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            set_default_service(previous)
        assert len(seen) == 8
        assert len({id(instance) for instance in seen}) == 1
        assert service_module._DEFAULT_SERVICE_LOCK is not None


class TestLazyDelivery:
    def test_annotating_a_hit_cannot_corrupt_the_stored_entry(self):
        service = EvaluationService()
        config = paper_config()
        first = service.evaluate(config, (NEAR_READ,))
        first.counters.notes.append("annotated by caller one")
        first.counters.media_bytes_read += 999
        second = service.evaluate(config, (NEAR_READ,))
        assert service.stats.hits == 1
        assert "annotated by caller one" not in second.counters.notes
        assert second.counters.media_bytes_read != first.counters.media_bytes_read

    def test_copy_of_unmaterialized_copy_stays_pristine(self):
        service = EvaluationService()
        config = paper_config()
        baseline = service.evaluate(config, (NEAR_READ,))
        hit = service.evaluate(config, (NEAR_READ,))
        dup = hit.copy()  # neither copy has materialized counters yet
        hit.counters.notes.append("scribble")
        assert dup.counters.notes == baseline.counters.notes
        assert "scribble" not in dup.counters.notes
