"""Acceptance: regenerating every experiment reuses the evaluation cache."""

from repro.experiments.registry import REGISTRY, run_experiment
from repro.sweep import EvaluationService, default_service, set_default_service


def test_second_full_pass_is_mostly_cache_hits():
    previous = set_default_service(EvaluationService())
    try:
        service = default_service()
        for exp_id in REGISTRY:
            run_experiment(exp_id)
        first_hits, first_misses = service.stats.hits, service.stats.misses
        assert first_misses > 0
        for exp_id in REGISTRY:
            run_experiment(exp_id)
        second_hits = service.stats.hits - first_hits
        second_misses = service.stats.misses - first_misses
        rate = second_hits / (second_hits + second_misses)
        assert rate > 0.5, f"second-pass hit rate {rate:.0%}"
    finally:
        set_default_service(previous)


def test_single_experiment_twice_hits_cache():
    previous = set_default_service(EvaluationService())
    try:
        service = default_service()
        run_experiment("fig7")
        baseline = service.stats.hits
        misses_before = service.stats.misses
        run_experiment("fig7")
        assert service.stats.misses == misses_before  # all hits
        assert service.stats.hits > baseline
    finally:
        set_default_service(previous)
