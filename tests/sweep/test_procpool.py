"""Process-pool sweep backend: bit-identity, error propagation, merging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, SweepError
from repro.memsim import Layout, Op, StreamSpec
from repro.obs import CountersRecorder
from repro.sweep import DiskCache, EvaluationService, SweepRunner
from repro.sweep.procpool import _chunked
from repro.workloads.grids import SweepGrid, SweepPoint
from repro.workloads.sequential import sequential_sweep


def fig3_grid() -> SweepGrid:
    return sequential_sweep(Op.READ)


def fig8_grid() -> SweepGrid:
    return sequential_sweep(Op.WRITE, layout=Layout.INDIVIDUAL)


def _point(label: str, *, threads: int = 4, size: int = 4096,
           issuing: int = 0, target: int = 0) -> SweepPoint:
    spec = StreamSpec(
        op=Op.READ, threads=threads, access_size=size,
        issuing_socket=issuing, target_socket=target,
    )
    return SweepPoint(label=label, params={"threads": threads}, streams=(spec,))


def _assert_identical(serial, parallel) -> None:
    assert list(serial) == list(parallel)  # same labels, same order
    for label in serial:
        assert serial[label].streams == parallel[label].streams
        assert serial[label].counters == parallel[label].counters
        assert serial[label].directory_after == parallel[label].directory_after


class TestBitIdentity:
    @pytest.mark.parametrize("grid", [fig3_grid(), fig8_grid()],
                             ids=["fig03-read", "fig08-write"])
    def test_process_bit_identical_to_serial_cold(self, grid):
        serial = SweepRunner(EvaluationService(memoize=False), backend="serial").run(grid)
        process = SweepRunner(
            EvaluationService(memoize=False), jobs=4, backend="process"
        ).run(grid)
        _assert_identical(serial, process)

    def test_process_bit_identical_through_shared_disk_cache(self, tmp_path):
        grid = fig3_grid()
        serial = SweepRunner(EvaluationService(memoize=False), backend="serial").run(grid)
        cold_service = EvaluationService(disk_cache=DiskCache(tmp_path))
        cold = SweepRunner(cold_service, jobs=2, backend="process").run(grid)
        # Second pool over the same directory: workers hit the disk
        # entries the first pool's workers wrote.
        warm_service = EvaluationService(disk_cache=DiskCache(tmp_path))
        warm = SweepRunner(warm_service, jobs=2, backend="process").run(grid)
        _assert_identical(serial, cold)
        _assert_identical(serial, warm)
        assert warm_service.stats.disk_hits > 0  # folded back from workers

    @given(
        threads=st.lists(
            st.sampled_from([1, 4, 8, 18, 36]), min_size=2, max_size=4, unique=True
        ),
        size=st.sampled_from([256, 4096, 65536]),
    )
    @settings(max_examples=5, deadline=None)
    def test_process_merge_deterministic_property(self, threads, size):
        points = tuple(
            _point(f"{t}T", threads=t, size=size, target=t % 2) for t in threads
        )
        grid = SweepGrid(name="prop", points=points)
        serial = SweepRunner(EvaluationService(memoize=False), backend="serial").run(grid)
        process = SweepRunner(
            EvaluationService(memoize=False), jobs=3, backend="process"
        ).run(grid)
        _assert_identical(serial, process)

    def test_chunking_covers_every_point_in_order(self):
        points = [_point(f"p{i}") for i in range(11)]
        chunks = _chunked(points, jobs=3)
        flattened = [point for chunk in chunks for point in chunk]
        assert flattened == points
        assert all(chunk for chunk in chunks)


class TestErrorPropagation:
    def test_poisoned_point_names_grid_and_label(self):
        grid = SweepGrid(
            name="poisoned",
            points=(_point("ok"), _point("bad", issuing=7), _point("ok2")),
        )
        with pytest.raises(SweepError, match="'poisoned'.*'bad'") as excinfo:
            SweepRunner(EvaluationService(), jobs=2, backend="process").run(grid)
        # Pickling drops __cause__, so the original error's text must
        # already be embedded in the message.
        assert "no such socket: 7" in str(excinfo.value)

    def test_unpicklable_point_surfaces_chained_error(self):
        poisoned = SweepPoint(
            label="unpicklable",
            params={"fn": lambda: None},
            streams=_point("x").streams,
        )
        grid = SweepGrid(name="ship-fail", points=(_point("ok"), poisoned))
        with pytest.raises(SweepError, match="'ship-fail'.*worker process") as excinfo:
            SweepRunner(EvaluationService(), jobs=2, backend="process").run(grid)
        assert excinfo.value.__cause__ is not None

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown sweep backend"):
            SweepRunner(EvaluationService(), backend="greenlet")

    def test_serial_backend_ignores_jobs(self):
        grid = SweepGrid(name="tiny", points=(_point("a"), _point("b")))
        results = SweepRunner(
            EvaluationService(), jobs=8, backend="serial"
        ).run(grid)
        assert list(results) == ["a", "b"]


class TestRecorderMerge:
    def test_every_point_accounted_in_parent_recorder(self):
        grid = fig3_grid()
        recorder = CountersRecorder()
        SweepRunner(
            EvaluationService(memoize=False), jobs=2, backend="process",
            recorder=recorder,
        ).run(grid)
        snapshot = recorder.snapshot()
        assert snapshot["counters"]["sweep.points_count"] == len(grid)
        wall = snapshot["histograms"]["sweep.point.wall_seconds"]
        assert wall["count"] == len(grid)
        assert wall["min"] > 0
        # Worker evaluations report through the merged snapshots too.
        assert snapshot["counters"]["sweep.cache.misses_count"] == len(grid)

    def test_disabled_recorder_ships_no_snapshots(self):
        grid = SweepGrid(
            name="quiet",
            points=(
                _point("a", threads=1),
                _point("b", threads=4),
                _point("c", threads=8),
            ),
        )
        service = EvaluationService(memoize=False)
        results = SweepRunner(service, jobs=2, backend="process").run(grid)
        assert list(results) == ["a", "b", "c"]
        assert service.stats.misses == len(grid)  # stats still folded

    def test_worker_stats_fold_into_parent_service(self):
        grid = fig3_grid()
        service = EvaluationService(memoize=False)
        SweepRunner(service, jobs=2, backend="process").run(grid)
        assert service.stats.misses == len(grid)
        assert service.stats.hits == 0
