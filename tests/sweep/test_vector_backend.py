"""The vector sweep backend is bit-identical to serial, errors included.

``backend="vector"`` routes whole grids through the batched kernels, so
beyond result equality these tests pin the operational contract: cache
statistics and recorder counters account every point exactly as the
serial path does, a grid-primed memo cache services later per-point
calls, failures name the grid and point label, and composing with the
process pool (``jobs > 1``) changes nothing observable.
"""

import pytest

from repro.errors import GridPointError, SweepError
from repro.memsim import (
    DaxMode,
    DirectoryState,
    Op,
    Pattern,
    PinningPolicy,
    StreamSpec,
    paper_config,
)
from repro.obs import CountersRecorder
from repro.sweep import EvaluationService, SweepRunner
from repro.workloads.grids import SweepGrid, SweepPoint


def make_grid(name: str = "grid", threads=(1, 4, 8, 18, 36)) -> SweepGrid:
    """Eligible sequential points plus far-socket fallback points."""
    points = []
    for t in threads:
        for op in (Op.READ, Op.WRITE):
            points.append(
                SweepPoint(
                    label=f"{op.value}-{t}",
                    params={"threads": t, "op": op.value},
                    streams=(StreamSpec(op=op, threads=t, access_size=4096),),
                )
            )
        points.append(
            SweepPoint(
                label=f"far-{t}",
                params={"threads": t, "op": "far"},
                streams=(
                    StreamSpec(
                        op=Op.READ, threads=t, access_size=64,
                        issuing_socket=0, target_socket=1,
                    ),
                ),
            )
        )
    return SweepGrid(name=name, points=tuple(points))


def poisoned_grid() -> SweepGrid:
    good = StreamSpec(op=Op.READ, threads=4, access_size=4096)
    bad = StreamSpec(op=Op.READ, threads=4, access_size=4096, target_socket=9)
    return SweepGrid(
        name="poisoned",
        points=(
            SweepPoint(label="ok-before", params={}, streams=(good,)),
            SweepPoint(label="bad-socket-9", params={}, streams=(bad,)),
            SweepPoint(label="ok-after", params={}, streams=(good.with_(threads=8),)),
        ),
    )


def assert_runs_identical(serial, vector):
    assert list(serial) == list(vector)
    for label in serial:
        assert serial[label].total_gbps == vector[label].total_gbps
        assert serial[label].counters == vector[label].counters
        assert serial[label].directory_after == vector[label].directory_after
        assert serial[label] == vector[label]


class TestBitIdentity:
    def test_vector_matches_serial(self):
        grid = make_grid()
        serial = SweepRunner(
            EvaluationService(memoize=False), backend="serial"
        ).run(grid)
        vector = SweepRunner(
            EvaluationService(memoize=False), backend="vector"
        ).run(grid)
        assert_runs_identical(serial, vector)

    def test_vector_matches_serial_with_warm_directory(self):
        config = paper_config()
        warm = DirectoryState.warm(config.topology)
        grid = make_grid()
        serial = SweepRunner(
            EvaluationService(memoize=False), backend="serial"
        ).run(grid, config=config, directory=warm)
        vector = SweepRunner(
            EvaluationService(memoize=False), backend="vector"
        ).run(grid, config=config, directory=warm)
        assert_runs_identical(serial, vector)

    def test_vector_composes_with_process_pool(self):
        grid = make_grid()
        serial = SweepRunner(
            EvaluationService(memoize=False), backend="serial"
        ).run(grid)
        fanned = SweepRunner(
            EvaluationService(memoize=False), backend="vector", jobs=2
        ).run(grid)
        assert_runs_identical(serial, fanned)


class TestCacheInterop:
    def test_stats_account_every_point(self):
        service = EvaluationService()
        grid = make_grid()
        SweepRunner(service, backend="vector").run(grid)
        assert service.stats.misses == len(grid)
        assert service.stats.hits == 0
        SweepRunner(service, backend="vector").run(grid)
        assert service.stats.misses == len(grid)
        assert service.stats.hits == len(grid)

    def test_grid_primed_memo_services_per_point_calls(self):
        service = EvaluationService()
        grid = make_grid()
        vector = SweepRunner(service, backend="vector").run(grid)
        hits_before = service.stats.hits
        for point in grid:
            result = service.evaluate(paper_config(), point.streams)
            assert result == vector[point.label]
        assert service.stats.hits == hits_before + len(grid)


class TestObservability:
    def test_counters_and_events_match_serial(self):
        grid = make_grid()
        serial_rec, vector_rec = CountersRecorder(), CountersRecorder()
        SweepRunner(
            EvaluationService(memoize=False),
            backend="serial",
            recorder=serial_rec,
        ).run(grid)
        SweepRunner(
            EvaluationService(memoize=False),
            backend="vector",
            recorder=vector_rec,
        ).run(grid)
        serial_snap, vector_snap = serial_rec.snapshot(), vector_rec.snapshot()
        assert serial_snap["counters"] == vector_snap["counters"]
        assert serial_snap["events"] == vector_snap["events"]
        # Wall time is nondeterministic; only the sample counts align.
        serial_hist = serial_snap["histograms"]["sweep.point.wall_seconds"]
        vector_hist = vector_snap["histograms"]["sweep.point.wall_seconds"]
        assert serial_hist["count"] == vector_hist["count"] == len(grid)


class TestFailures:
    @pytest.mark.parametrize("jobs", [1, 2], ids=["inline", "procpool"])
    def test_error_names_grid_and_point(self, jobs):
        runner = SweepRunner(
            EvaluationService(memoize=False), backend="vector", jobs=jobs
        )
        with pytest.raises(SweepError) as excinfo:
            runner.run(poisoned_grid())
        message = str(excinfo.value)
        assert "'poisoned'" in message
        assert "'bad-socket-9'" in message
        assert "socket" in message.lower()

    def test_service_reports_failing_index(self):
        service = EvaluationService(memoize=False)
        grid = poisoned_grid()
        with pytest.raises(GridPointError) as excinfo:
            service.evaluate_grid(
                paper_config(), [point.streams for point in grid]
            )
        assert excinfo.value.index == 1
        assert "socket" in str(excinfo.value.original)

    def test_grid_point_error_is_a_sweep_error(self):
        # Callers already catching SweepError (or ReproError) keep
        # working when batched evaluation surfaces the failure.
        assert issubclass(GridPointError, SweepError)


def family_grid(name: str = "families") -> SweepGrid:
    """One point per formerly-fallback family, all vector-eligible now."""
    base = StreamSpec(op=Op.READ, threads=8, access_size=4096)
    points = (
        SweepPoint(label="seq", params={}, streams=(base,)),
        SweepPoint(
            label="random",
            params={},
            streams=(base.with_(pattern=Pattern.RANDOM, access_size=256),),
        ),
        SweepPoint(
            label="remote",
            params={},
            streams=(base.with_(issuing_socket=0, target_socket=1),),
        ),
        SweepPoint(
            label="unpinned",
            params={},
            streams=(base.with_(pinning=PinningPolicy.NONE),),
        ),
        SweepPoint(
            label="fsdax",
            params={},
            streams=(base.with_(op=Op.WRITE, dax_mode=DaxMode.FSDAX),),
        ),
        SweepPoint(
            label="mixed",
            params={},
            streams=(base, base.with_(op=Op.WRITE, threads=4)),
        ),
    )
    return SweepGrid(name=name, points=points)


class TestFamilyCoverage:
    def test_every_family_matches_serial_with_counters(self):
        grid = family_grid()
        serial_rec, vector_rec = CountersRecorder(), CountersRecorder()
        serial = SweepRunner(
            EvaluationService(memoize=False), backend="serial", recorder=serial_rec
        ).run(grid)
        vector = SweepRunner(
            EvaluationService(memoize=False), backend="vector", recorder=vector_rec
        ).run(grid)
        assert_runs_identical(serial, vector)
        serial_snap, vector_snap = serial_rec.snapshot(), vector_rec.snapshot()
        assert serial_snap["counters"] == vector_snap["counters"]
        # Every family is priced in batch: no scalar fallback remains.
        assert "sweep.vector.fallback_count" not in vector_snap["counters"]

    def test_family_grid_primes_cache_for_per_point_calls(self):
        # Far/random/unpinned/fsdax entries computed by the batch must be
        # byte-interchangeable with per-point computes: a later scalar
        # call hits the memo the vector sweep populated.
        service = EvaluationService()
        grid = family_grid()
        vector = SweepRunner(service, backend="vector").run(grid)
        assert service.stats.misses == len(grid)
        for point in grid:
            assert service.evaluate(paper_config(), point.streams) == vector[point.label]
        assert service.stats.hits == len(grid)


class TestFallbackCounters:
    def test_poisoned_point_emits_fallback_reason(self):
        # The scalar residue is observable: the service counts the
        # fallback (with its reason) before the scalar evaluator raises.
        service = EvaluationService(memoize=False)
        recorder = CountersRecorder()
        with pytest.raises(GridPointError):
            service.evaluate_grid(
                paper_config(),
                [point.streams for point in poisoned_grid()],
                recorder=recorder,
            )
        counters = recorder.snapshot()["counters"]
        assert counters["sweep.vector.fallback_count"] == 1
        assert counters["sweep.vector.fallback.socket_count"] == 1
