"""SweepRunner: parallel, interleaved, and cached runs are bit-identical."""

import pytest

from repro.errors import SimulationError, SweepError
from repro.memsim import DirectoryState, MachineConfig, Op, StreamSpec, paper_config
from repro.sweep import EvaluationService, SweepRunner
from repro.workloads.grids import SweepGrid, SweepPoint


def make_grid(name: str = "grid", threads=(1, 2, 4, 8, 18, 24, 36)) -> SweepGrid:
    points = []
    for t in threads:
        for op in (Op.READ, Op.WRITE):
            points.append(
                SweepPoint(
                    label=f"{op.value}-{t}",
                    params={"threads": t, "op": op.value},
                    streams=(StreamSpec(op=op, threads=t, access_size=4096),),
                )
            )
    for t in threads:
        points.append(
            SweepPoint(
                label=f"far-{t}",
                params={"threads": t, "op": "far"},
                streams=(
                    StreamSpec(
                        op=Op.READ, threads=t, access_size=4096,
                        issuing_socket=0, target_socket=1,
                    ),
                ),
            )
        )
    return SweepGrid(name=name, points=tuple(points))


class TestParallelism:
    def test_jobs_4_bit_identical_to_jobs_1(self):
        grid = make_grid()
        serial = SweepRunner(EvaluationService(memoize=False), jobs=1).run(grid)
        threaded = SweepRunner(EvaluationService(memoize=False), jobs=4).run(grid)
        assert list(serial) == list(threaded)  # same labels, same order
        for label in serial:
            assert serial[label].total_gbps == threaded[label].total_gbps
            assert serial[label].counters == threaded[label].counters
            assert serial[label].directory_after == threaded[label].directory_after

    def test_jobs_share_one_memo_cache(self):
        service = EvaluationService()
        grid = make_grid()
        SweepRunner(service, jobs=4).run(grid)
        SweepRunner(service, jobs=4).run(grid)
        assert service.stats.hits >= len(grid)

    def test_results_keyed_and_ordered_by_label(self):
        grid = make_grid(threads=(1, 4))
        results = SweepRunner(EvaluationService(), jobs=2).run(grid)
        assert list(results) == grid.labels()

    def test_totals_match_run(self):
        grid = make_grid(threads=(1, 4))
        runner = SweepRunner(EvaluationService(), jobs=2)
        assert runner.totals(grid) == {
            label: result.total_gbps for label, result in runner.run(grid).items()
        }


class TestIsolation:
    def test_interleaved_sweeps_match_isolated(self):
        """Running two sweeps point-by-point interleaved must equal
        running each alone: no evaluation can leak state into the next."""
        config = paper_config()
        ablated = MachineConfig(prefetcher_enabled=False)
        warm = DirectoryState.warm(config.topology)
        grid = make_grid(threads=(1, 8, 36))

        alone = EvaluationService(memoize=False)
        expected_a = [
            alone.evaluate(config, p.streams, warm).total_gbps for p in grid
        ]
        expected_b = [
            alone.evaluate(ablated, p.streams, warm).total_gbps for p in grid
        ]

        mixed = EvaluationService()
        got_a, got_b = [], []
        for point in grid:  # interleave the two sweeps on one service
            got_a.append(mixed.evaluate(config, point.streams, warm).total_gbps)
            got_b.append(mixed.evaluate(ablated, point.streams, warm).total_gbps)
        assert got_a == expected_a
        assert got_b == expected_b

    def test_every_point_sees_the_same_directory(self):
        """Grid order must not matter: a far point early in the grid does
        not warm the directory for a far point later in the grid."""
        grid = make_grid(threads=(4,))
        reversed_grid = SweepGrid(name="rev", points=tuple(reversed(grid.points)))
        runner = SweepRunner(EvaluationService(), jobs=1)
        forward = runner.totals(grid, directory=DirectoryState.cold())
        backward = runner.totals(reversed_grid, directory=DirectoryState.cold())
        assert forward == backward


def poisoned_grid() -> SweepGrid:
    """A grid whose middle point references a socket that does not exist.

    The spec constructs fine — the failure only surfaces inside
    ``evaluate``, which is exactly the case where a bare thread-pool
    traceback would not say which point was at fault.
    """
    good = StreamSpec(op=Op.READ, threads=4, access_size=4096)
    bad = StreamSpec(op=Op.READ, threads=4, access_size=4096, target_socket=9)
    return SweepGrid(
        name="poisoned",
        points=(
            SweepPoint(label="ok-before", params={}, streams=(good,)),
            SweepPoint(label="bad-socket-9", params={}, streams=(bad,)),
            SweepPoint(label="ok-after", params={}, streams=(good.with_(threads=8),)),
        ),
    )


class TestPoisonedPoint:
    @pytest.mark.parametrize("jobs", [1, 4], ids=["serial", "parallel"])
    def test_error_names_grid_and_point(self, jobs):
        runner = SweepRunner(EvaluationService(memoize=False), jobs=jobs)
        with pytest.raises(SweepError) as excinfo:
            runner.run(poisoned_grid())
        message = str(excinfo.value)
        assert "'poisoned'" in message
        assert "'bad-socket-9'" in message

    def test_original_exception_is_chained(self):
        runner = SweepRunner(EvaluationService(memoize=False))
        with pytest.raises(SweepError) as excinfo:
            runner.run(poisoned_grid())
        cause = excinfo.value.__cause__
        assert cause is not None
        assert "socket" in str(cause)

    def test_sweep_error_is_a_simulation_error(self):
        # Callers already catching SimulationError keep working.
        assert issubclass(SweepError, SimulationError)
