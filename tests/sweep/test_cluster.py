"""Cluster sweep backend: protocol, bit-identity, accounting, errors."""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    BackendError,
    ConfigurationError,
    GridPointError,
    SweepError,
)
from repro.memsim import Op, StreamSpec
from repro.memsim.config import DirectoryState, paper_config
from repro.obs import NULL_RECORDER, CountersRecorder
from repro.sweep import BACKENDS, DiskCache, EvaluationService, SweepRunner
from repro.sweep.cluster import ClusterOptions, parse_endpoint
from repro.sweep.cluster import protocol
from repro.sweep.cluster.coordinator import Coordinator
from repro.workloads.grids import SweepGrid, SweepPoint
from repro.workloads.sequential import sequential_sweep

from tests.serve.conftest import run_async


def fig3_grid() -> SweepGrid:
    return sequential_sweep(Op.READ)


def _point(label: str, *, threads: int = 4, size: int = 4096,
           issuing: int = 0, target: int = 0) -> SweepPoint:
    spec = StreamSpec(
        op=Op.READ, threads=threads, access_size=size,
        issuing_socket=issuing, target_socket=target,
    )
    return SweepPoint(label=label, params={"threads": threads}, streams=(spec,))


def _assert_identical(serial, parallel) -> None:
    assert list(serial) == list(parallel)  # same labels, same order
    for label in serial:
        assert serial[label].streams == parallel[label].streams
        assert serial[label].counters == parallel[label].counters
        assert serial[label].directory_after == parallel[label].directory_after


class TestProtocol:
    def test_blob_round_trip(self):
        config = paper_config()
        assert protocol.decode_blob(protocol.encode_blob(config)) == config
        point = _point("x")
        assert protocol.decode_blob(protocol.encode_blob((point,))) == (point,)

    def test_frame_round_trip(self):
        async def scenario():
            reader = asyncio.StreamReader(limit=protocol.MAX_FRAME_BYTES)
            reader.feed_data(protocol.dump_line({"kind": "heartbeat"}))
            reader.feed_eof()
            first = await protocol.read_frame(reader)
            assert first == {"kind": "heartbeat"}
            assert await protocol.read_frame(reader) is None  # clean EOF

        run_async(scenario())

    def test_oversized_frame_is_a_sweep_error(self):
        async def scenario():
            reader = asyncio.StreamReader(limit=64)
            reader.feed_data(b"x" * 256)
            with pytest.raises(SweepError, match="exceeds"):
                await protocol.read_frame(reader)

        run_async(scenario())

    @pytest.mark.parametrize("line", [b"not json\n", b"[1, 2]\n", b"{}\n"])
    def test_malformed_frames_are_sweep_errors(self, line):
        async def scenario():
            reader = asyncio.StreamReader(limit=protocol.MAX_FRAME_BYTES)
            reader.feed_data(line)
            reader.feed_eof()
            with pytest.raises(SweepError):
                await protocol.read_frame(reader)

        run_async(scenario())


class TestSharding:
    def _coordinator(self, points, workers=2):
        return Coordinator(
            "shards", points,
            config=paper_config(), directory=DirectoryState.cold(),
            service=EvaluationService(), recorder=NULL_RECORDER,
            workers_hint=workers,
        )

    def test_shards_cover_every_index_exactly_once(self):
        points = [_point(f"p{i}", threads=i + 1) for i in range(23)]

        async def scenario():
            coordinator = self._coordinator(points, workers=3)
            indices = sorted(
                i for chunk in coordinator._pending for i in chunk
            )
            assert indices == list(range(23))
            assert all(chunk for chunk in coordinator._pending)

        run_async(scenario())

    def test_duplicate_content_points_co_locate(self):
        # Same streams, different labels: the request digest ignores the
        # label, so both land in the same content-hash shard.
        points = [_point(f"p{i}", threads=i + 1) for i in range(16)]
        points.append(_point("dup-a", threads=1))
        points.append(_point("dup-b", threads=1))

        async def scenario():
            coordinator = self._coordinator(points, workers=4)
            placed = {
                i: n
                for n, chunk in enumerate(coordinator._pending)
                for i in chunk
            }
            assert placed[0] == placed[16] == placed[17]

        run_async(scenario())


class TestBitIdentity:
    def test_cluster_bit_identical_to_serial_cold(self):
        grid = fig3_grid()
        serial = SweepRunner(
            EvaluationService(memoize=False), backend="serial"
        ).run(grid)
        cluster = SweepRunner(
            EvaluationService(memoize=False), jobs=2, backend="cluster"
        ).run(grid)
        _assert_identical(serial, cluster)

    @given(
        threads=st.lists(
            st.sampled_from([1, 4, 8, 18, 36]), min_size=2, max_size=4, unique=True
        ),
        size=st.sampled_from([256, 4096, 65536]),
    )
    @settings(max_examples=3, deadline=None)
    def test_cluster_merge_deterministic_property(self, threads, size):
        points = tuple(
            _point(f"{t}T", threads=t, size=size, target=t % 2) for t in threads
        )
        grid = SweepGrid(name="prop", points=points)
        serial = SweepRunner(
            EvaluationService(memoize=False), backend="serial"
        ).run(grid)
        cluster = SweepRunner(
            EvaluationService(memoize=False), jobs=2, backend="cluster"
        ).run(grid)
        _assert_identical(serial, cluster)

    def test_cluster_columns_equal_serial_columns(self):
        grid = fig3_grid()
        s_labels, s_columns = SweepRunner(
            EvaluationService(memoize=False), backend="serial"
        ).run_columns(grid)
        c_labels, c_columns = SweepRunner(
            EvaluationService(memoize=False), jobs=2, backend="cluster"
        ).run_columns(grid)
        assert s_labels == c_labels
        assert s_columns.total_gbps() == c_columns.total_gbps()
        for row in range(len(s_labels)):
            assert s_columns.view(row).counters == c_columns.view(row).counters


class TestAccounting:
    def test_counter_and_stats_parity_with_serial(self):
        grid = fig3_grid()
        ser_rec, clu_rec = CountersRecorder(), CountersRecorder()
        ser_svc = EvaluationService(memoize=False)
        clu_svc = EvaluationService(memoize=False)
        SweepRunner(ser_svc, backend="serial", recorder=ser_rec).run(grid)
        SweepRunner(clu_svc, jobs=2, backend="cluster", recorder=clu_rec).run(grid)
        assert (ser_svc.stats.hits, ser_svc.stats.misses, ser_svc.stats.disk_hits) \
            == (clu_svc.stats.hits, clu_svc.stats.misses, clu_svc.stats.disk_hits)
        serial = ser_rec.snapshot()["counters"]
        cluster = clu_rec.snapshot()["counters"]
        # The sweep-layer tallies are integers and must match exactly;
        # cluster.* keys are extra (the cluster's own mechanics).
        for key in ("sweep.points_count", "sweep.cache.misses_count"):
            assert cluster[key] == serial[key]
        assert cluster["cluster.workers_count"] == 2
        assert cluster["cluster.chunks.shipped_count"] >= 2
        # Every serial counter exists in the cluster snapshot too (the
        # memsim families merged over from the workers).
        assert set(serial) <= set(cluster)

    def test_shared_disk_cache_warm_run_hits_everywhere(self, tmp_path):
        grid = fig3_grid()
        serial = SweepRunner(
            EvaluationService(memoize=False), backend="serial"
        ).run(grid)
        cold_svc = EvaluationService(disk_cache=DiskCache(tmp_path))
        cold = SweepRunner(cold_svc, jobs=2, backend="cluster").run(grid)
        warm_rec = CountersRecorder()
        warm_svc = EvaluationService(disk_cache=DiskCache(tmp_path))
        warm = SweepRunner(
            warm_svc, jobs=2, backend="cluster", recorder=warm_rec
        ).run(grid)
        _assert_identical(serial, cold)
        _assert_identical(serial, warm)
        n = len(serial)
        # Every warm point is a shared-tier hit seeded into the worker
        # memo: the same hits=1 + disk_hits=1 pair a local warm disk
        # cache produces, carried across the wire.
        assert warm_svc.stats.disk_hits == n
        assert warm_svc.stats.hits == n
        counters = warm_rec.snapshot()["counters"]
        assert counters["sweep.cache.disk_hits_count"] == n
        assert counters["sweep.cache.hits_count"] == n
        assert counters["cluster.shared_cache.hits_count"] == n


class TestErrorPropagation:
    def test_poisoned_point_attribution_and_partial_prefix(self):
        points = tuple(
            [_point(f"p{i}", threads=i + 1) for i in range(6)]
            + [_point("bad", issuing=7)]
            + [_point(f"q{i}", threads=i + 11) for i in range(3)]
        )
        grid = SweepGrid(name="poisoned", points=points)
        with pytest.raises(GridPointError) as excinfo:
            SweepRunner(
                EvaluationService(memoize=False), jobs=2, backend="cluster"
            ).run_columns(grid)
        exc = excinfo.value
        assert exc.label == "bad"
        assert exc.grid == "poisoned"
        assert points[exc.index].label == "bad"
        assert "no such socket: 7" in str(exc)
        # The partial is the contiguous completed grid prefix: its rows
        # are bit-identical to serial's.
        assert len(exc.partial) <= exc.index
        if len(exc.partial):
            serial = SweepRunner(
                EvaluationService(memoize=False), backend="serial"
            ).run(SweepGrid(name="prefix", points=points[: len(exc.partial)]))
            for row, label in enumerate(list(serial)):
                assert exc.partial.view(row).counters == serial[label].counters


class TestBackendValidation:
    def test_unknown_backend_raises_typed_error_naming_valid_set(self):
        with pytest.raises(BackendError) as excinfo:
            SweepRunner(EvaluationService(), backend="greenlet")
        exc = excinfo.value
        assert isinstance(exc, SweepError)
        assert isinstance(exc, ConfigurationError)
        assert exc.backend == "greenlet"
        assert exc.valid == BACKENDS
        for name in BACKENDS:
            assert repr(name) in str(exc)
        assert "cluster" in str(exc)


class TestOptions:
    def test_defaults_validate(self):
        options = ClusterOptions()
        assert options.workers == 2
        assert options.shared_cache is True

    def test_bad_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="workers"):
            ClusterOptions(workers=0)
        # ...unless remote endpoints are supplied instead.
        ClusterOptions(workers=0, connect=(("h", 1),))

    def test_bad_points_per_item_rejected(self):
        with pytest.raises(ConfigurationError, match="points_per_item"):
            ClusterOptions(points_per_item=0)

    def test_parse_endpoint(self):
        assert parse_endpoint("127.0.0.1:9000") == ("127.0.0.1", 9000)
        with pytest.raises(ConfigurationError, match="HOST:PORT"):
            parse_endpoint("no-port")
        with pytest.raises(ConfigurationError, match="integer"):
            parse_endpoint("host:http")

    def test_empty_grid_short_circuits(self):
        from repro.sweep.cluster import run_grid_columns

        labels, columns = run_grid_columns(
            SweepGrid(name="empty", points=(_point("unused"),)), [],
            config=paper_config(), directory=DirectoryState.cold(),
            jobs=2, service=EvaluationService(), recorder=NULL_RECORDER,
        )
        assert labels == []
        assert len(columns) == 0
