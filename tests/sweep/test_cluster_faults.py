"""Fault injection for the cluster backend, on the fake clock.

Every scenario runs a real :class:`Coordinator` and in-process
:class:`ClusterWorker` instances over real loopback TCP, but with the
injected clock/sleep pair from :mod:`tests.serve.conftest` — so slow
workers, heartbeat timeouts, and steal/requeue races elapse
deterministically in zero wall time, and every outcome is asserted
bit-identical to serial.
"""

import asyncio

import pytest

from repro.memsim import Op, StreamSpec
from repro.memsim.config import DirectoryState, paper_config
from repro.obs import NULL_RECORDER, CountersRecorder
from repro.sweep import DiskCache, EvaluationService, SweepRunner
from repro.sweep.cluster import ClusterOptions, protocol
from repro.sweep.cluster.coordinator import Coordinator
from repro.sweep.cluster.worker import ClusterWorker
from repro.workloads.grids import SweepGrid, SweepPoint

from tests.serve.conftest import FakeClock, run_async

CONFIG = paper_config()
STATE = DirectoryState.cold()


def _point(label: str, *, threads: int = 4, size: int = 4096) -> SweepPoint:
    spec = StreamSpec(
        op=Op.READ, threads=threads, access_size=size,
        issuing_socket=0, target_socket=0,
    )
    return SweepPoint(label=label, params={"threads": threads}, streams=(spec,))


def _grid(n: int = 12) -> SweepGrid:
    # Unique-content points: hit/miss tallies then partition exactly
    # across chunk and steal boundaries.
    return SweepGrid(
        name="faults",
        points=tuple(_point(f"p{i}", threads=i + 1) for i in range(n)),
    )


def _serial(grid: SweepGrid):
    return SweepRunner(EvaluationService(memoize=False), backend="serial").run(grid)


async def _run_scenario(
    grid: SweepGrid,
    worker_kwargs: list[dict],
    options: ClusterOptions,
    *,
    recorder=NULL_RECORDER,
    service: EvaluationService | None = None,
    advance_step: float = 60.0,
    max_advances: int = 200,
):
    """Drive one sweep to completion, advancing the fake clock as needed.

    Returns ``(labels, columns, workers)``; raises whatever
    :meth:`Coordinator.finish` raises.
    """
    clock = FakeClock()
    svc = service if service is not None else EvaluationService(memoize=False)
    points = list(grid)
    coordinator = Coordinator(
        grid.name, points,
        config=CONFIG, directory=STATE,
        service=svc, recorder=recorder, options=options,
        workers_hint=len(worker_kwargs),
        clock=clock.time, sleep=clock.sleep,
    )
    host, port = await coordinator.start()
    workers: list[ClusterWorker] = []
    tasks: list[asyncio.Task] = []
    for kwargs in worker_kwargs:
        reader, writer = await asyncio.open_connection(
            host, port, limit=protocol.MAX_FRAME_BYTES
        )
        worker = ClusterWorker(
            reader, writer, clock=clock.time, sleep=clock.sleep, **kwargs
        )
        workers.append(worker)
        tasks.append(asyncio.ensure_future(worker.run()))
    finish = asyncio.ensure_future(coordinator.finish())
    try:
        for _ in range(max_advances):
            await clock.drain()
            if finish.done():
                break
            await clock.advance(advance_step)
        assert finish.done(), "sweep did not finish under the fake clock"
        labels, columns = await finish
        return labels, columns, workers
    finally:
        if not finish.done():
            finish.cancel()
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)


def _assert_matches_serial(grid, labels, columns) -> None:
    serial = _serial(grid)
    assert labels == list(serial)
    for row, label in enumerate(labels):
        view = columns.view(row)
        assert view.streams == serial[label].streams
        assert view.counters == serial[label].counters
        assert view.directory_after == serial[label].directory_after


class TestSlowWorkerSteal:
    def test_idle_worker_steals_from_straggler(self):
        # 48 points shard so the straggler's first chunk holds 6: one
        # in-flight (unstealable) plus a queue worth relinquishing.
        grid = _grid(48)
        recorder = CountersRecorder()
        options = ClusterOptions(
            points_per_item=1,
            heartbeat_seconds=10.0,
            heartbeat_timeout_seconds=1e12,  # nothing dies in this test
        )

        async def scenario():
            # Worker 1 parks on the fake clock before every item; worker 0
            # runs at full speed, drains the pending chunks, and must then
            # steal the straggler's queue.
            return await _run_scenario(
                grid,
                [dict(), dict(item_delay_seconds=50.0)],
                options,
                recorder=recorder,
            )

        labels, columns, _ = run_async(scenario())
        _assert_matches_serial(grid, labels, columns)
        counters = recorder.snapshot()["counters"]
        assert counters["cluster.chunks.stolen_count"] >= 1
        assert counters.get("cluster.chunks.requeued_count", 0) == 0
        assert counters["sweep.points_count"] == len(list(grid))


class TestWorkerCrash:
    def test_crashed_worker_chunk_requeued_bit_identical(self):
        # The crashing worker's chunk holds 6 points = 3 items of 2: it
        # dies after the first, leaving 4 unfilled points to requeue.
        grid = _grid(48)
        recorder = CountersRecorder()
        options = ClusterOptions(
            points_per_item=2,
            heartbeat_seconds=10.0,
            heartbeat_timeout_seconds=1e12,  # death comes from the EOF
        )

        async def scenario():
            # Worker 1 aborts its transport after one item — a kill -9
            # mid-chunk. The coordinator must requeue its unfilled points
            # for worker 0.
            return await _run_scenario(
                grid,
                [dict(), dict(crash_after_items=1)],
                options,
                recorder=recorder,
            )

        labels, columns, _ = run_async(scenario())
        _assert_matches_serial(grid, labels, columns)
        counters = recorder.snapshot()["counters"]
        assert counters["cluster.chunks.requeued_count"] >= 1

    def test_every_worker_dead_is_fatal(self):
        grid = _grid(8)
        options = ClusterOptions(
            points_per_item=1,
            heartbeat_timeout_seconds=1e12,
        )

        async def scenario():
            from repro.errors import SweepError

            with pytest.raises(SweepError, match="every cluster worker died"):
                await _run_scenario(
                    grid,
                    [dict(crash_after_items=1)],
                    options,
                )

        run_async(scenario())


class TestHeartbeatTimeout:
    def test_silent_worker_declared_dead_and_requeued(self):
        grid = _grid(12)
        recorder = CountersRecorder()
        options = ClusterOptions(
            points_per_item=1,
            heartbeat_seconds=10.0,
            heartbeat_timeout_seconds=100.0,
        )

        async def scenario():
            # Worker 1 sends no heartbeats and parks forever before its
            # first item: work-stealing reclaims its queue, and only the
            # heartbeat timeout can reclaim the in-flight item.
            return await _run_scenario(
                grid,
                [dict(), dict(item_delay_seconds=1e15, heartbeat=False)],
                options,
                advance_step=60.0,
            )

        labels, columns, _ = run_async(scenario())
        _assert_matches_serial(grid, labels, columns)

    def test_heartbeats_keep_a_slow_worker_alive(self):
        grid = _grid(12)
        recorder = CountersRecorder()
        options = ClusterOptions(
            points_per_item=1,
            heartbeat_seconds=10.0,
            heartbeat_timeout_seconds=100.0,
        )

        async def scenario():
            # Same straggler, but heartbeating: it must never be declared
            # dead, so its one in-flight item completes on its own clock.
            return await _run_scenario(
                grid,
                [dict(), dict(item_delay_seconds=50.0)],
                options,
                recorder=recorder,
            )

        labels, columns, _ = run_async(scenario())
        _assert_matches_serial(grid, labels, columns)
        counters = recorder.snapshot()["counters"]
        assert counters.get("cluster.chunks.requeued_count", 0) == 0
        assert counters["cluster.heartbeats_count"] >= 1


class TestSharedCacheCorruption:
    def test_corrupt_blocks_read_as_miss_and_heal(self, tmp_path):
        grid = _grid(10)
        options = ClusterOptions(points_per_item=2, heartbeat_timeout_seconds=1e12)

        def cluster_run(recorder=NULL_RECORDER):
            async def scenario():
                service = EvaluationService(disk_cache=DiskCache(tmp_path))
                labels, columns, _ = await _run_scenario(
                    grid, [dict(), dict()], options,
                    recorder=recorder, service=service,
                )
                return labels, columns, service

            return run_async(scenario())

        labels, columns, _ = cluster_run()
        _assert_matches_serial(grid, labels, columns)
        blocks = sorted((tmp_path / "blocks").rglob("*.json"))
        assert blocks
        for path in blocks:
            path.write_text("not json {")
        # Corrupt blocks must read as misses: the second run recomputes
        # everything and republishes — healing the same content-addressed
        # block files in place.
        rec2 = CountersRecorder()
        labels2, columns2, service2 = cluster_run(rec2)
        _assert_matches_serial(grid, labels2, columns2)
        assert service2.stats.misses == len(list(grid))
        assert service2.stats.disk_hits == 0
        counters = rec2.snapshot()["counters"]
        assert counters["cluster.shared_cache.misses_count"] == len(list(grid))
        # Healed: a third run over the same root is all shared-tier hits.
        labels3, columns3, service3 = cluster_run()
        _assert_matches_serial(grid, labels3, columns3)
        assert service3.stats.disk_hits == len(list(grid))
        assert service3.stats.misses == 0
