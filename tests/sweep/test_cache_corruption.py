"""Fault injection against the on-disk evaluation cache.

A corrupt cache entry — truncated write, garbage bytes, or a payload
whose schema drifted — must behave exactly like a miss: the request is
re-evaluated, the result is bit-identical to a clean computation, and
the entry is re-written so the *next* process gets a healthy hit.
Silently propagating a half-written payload would poison every figure
downstream of it.
"""

import json

import pytest

from repro.memsim import evaluation
from repro.memsim.config import DirectoryState, paper_config
from repro.memsim.spec import Op, StreamSpec
from repro.obs import CountersRecorder
from repro.sweep import DiskCache, EvaluationService

SPEC = StreamSpec(op=Op.READ, threads=8, access_size=4096)


def evaluate_through(root) -> tuple[EvaluationService, object]:
    """Fresh service over ``root`` (no memo: force the disk path)."""
    service = EvaluationService(disk_cache=DiskCache(root), memoize=False)
    result = service.evaluate(paper_config(), [SPEC], DirectoryState.cold())
    return service, result


def sole_entry(root):
    entries = [p for p in root.rglob("*.json")]
    assert len(entries) == 1
    return entries[0]


def truncate(path):
    text = path.read_text(encoding="utf-8")
    path.write_text(text[: len(text) // 2], encoding="utf-8")


def garbage(path):
    path.write_bytes(b"\x00\xffnot json at all{{{")


def wrong_schema(path):
    path.write_text(json.dumps({"streams": "nope"}), encoding="utf-8")


def empty(path):
    path.write_text("", encoding="utf-8")


def missing_key(path):
    payload = json.loads(path.read_text(encoding="utf-8"))
    del payload["counters"]
    path.write_text(json.dumps(payload), encoding="utf-8")


CORRUPTIONS = {
    "truncated": truncate,
    "garbage": garbage,
    "wrong_schema": wrong_schema,
    "empty": empty,
    "missing_key": missing_key,
}


@pytest.mark.parametrize("kind", sorted(CORRUPTIONS), ids=sorted(CORRUPTIONS))
def test_corrupt_entry_is_a_miss_and_gets_rewritten(tmp_path, kind):
    _, original = evaluate_through(tmp_path)
    entry = sole_entry(tmp_path)
    healthy = entry.read_text(encoding="utf-8")
    CORRUPTIONS[kind](entry)

    # A fresh service must treat the corrupt entry as a miss ...
    service, recomputed = evaluate_through(tmp_path)
    assert service.stats.misses == 1
    assert service.stats.disk_hits == 0
    # ... return the bit-identical result ...
    assert recomputed.total_gbps == original.total_gbps
    assert recomputed.counters == original.counters
    # ... and re-write the entry so the next process hits cleanly.
    assert entry.read_text(encoding="utf-8") == healthy
    follower, _ = evaluate_through(tmp_path)
    assert follower.stats.disk_hits == 1


def test_corrupt_entry_counts_as_miss_in_recorder(tmp_path):
    evaluate_through(tmp_path)
    garbage(sole_entry(tmp_path))
    rec = CountersRecorder()
    service = EvaluationService(disk_cache=DiskCache(tmp_path), memoize=False)
    service.evaluate(paper_config(), [SPEC], DirectoryState.cold(), recorder=rec)
    assert rec.counter("sweep.cache.misses_count") == 1.0
    assert rec.counter("sweep.cache.hits_count") == 0.0


def test_clean_entry_still_hits(tmp_path):
    """Control case: without corruption the second service hits disk."""
    evaluate_through(tmp_path)
    service, _ = evaluate_through(tmp_path)
    assert service.stats.disk_hits == 1
    assert service.stats.misses == 0


def test_corruption_does_not_leak_into_results(tmp_path):
    """The re-evaluated result must match a never-cached evaluation."""
    _, original = evaluate_through(tmp_path)
    wrong_schema(sole_entry(tmp_path))
    _, recomputed = evaluate_through(tmp_path)
    fresh = evaluation.evaluate(paper_config(), [SPEC], DirectoryState.cold())
    assert recomputed.total_gbps == fresh.total_gbps == original.total_gbps
