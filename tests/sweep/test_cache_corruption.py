"""Fault injection against the on-disk evaluation cache (schema v2).

A corrupt cache entry — truncated write, garbage bytes, a payload whose
schema drifted, or a v1 per-point entry from before the columnar
refactor — must behave exactly like a miss: the request is re-evaluated,
the result is bit-identical to a clean computation, and the entry is
re-written so the *next* process gets a healthy hit. Silently
propagating a half-written payload would poison every figure downstream
of it.

Schema v2 stores a column *block* (content-addressed by member request
digests) plus an *index shard* mapping digest -> (block, row); both
files are injected with faults here, independently. The block digest is
deterministic in the request digests and the payload encoding is
canonical JSON, so recomputation rewrites byte-identical files — which
is exactly what the healing assertions pin.
"""

import json

import pytest

from repro.memsim import evaluation
from repro.memsim.config import DirectoryState, paper_config
from repro.memsim.evaluation import observable_pairs
from repro.memsim.spec import Op, StreamSpec
from repro.obs import CountersRecorder
from repro.sweep import DiskCache, EvaluationService
from repro.sweep.cache import _canonical, request_digest, result_to_payload

SPEC = StreamSpec(op=Op.READ, threads=8, access_size=4096)


def evaluate_through(root) -> tuple[EvaluationService, object]:
    """Fresh service over ``root`` (no memo: force the disk path)."""
    service = EvaluationService(disk_cache=DiskCache(root), memoize=False)
    result = service.evaluate(paper_config(), [SPEC], DirectoryState.cold())
    return service, result


def sole_block(root):
    blocks = list((root / "blocks").rglob("*.json"))
    assert len(blocks) == 1
    return blocks[0]


def sole_shard(root):
    shards = list((root / "index").glob("*.json"))
    assert len(shards) == 1
    return shards[0]


def truncate(path):
    text = path.read_text(encoding="utf-8")
    path.write_text(text[: len(text) // 2], encoding="utf-8")


def garbage(path):
    path.write_bytes(b"\x00\xffnot json at all{{{")


def wrong_schema(path):
    path.write_text(json.dumps({"streams": "nope"}), encoding="utf-8")


def empty(path):
    path.write_text("", encoding="utf-8")


def missing_key(path):
    payload = json.loads(path.read_text(encoding="utf-8"))
    del payload["counters"]
    path.write_text(json.dumps(payload), encoding="utf-8")


def missing_digests(path):
    payload = json.loads(path.read_text(encoding="utf-8"))
    del payload["digests"]
    path.write_text(json.dumps(payload), encoding="utf-8")


def ragged_columns(path):
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["counters"]["app_bytes_read"].append(0.0)
    path.write_text(json.dumps(payload), encoding="utf-8")


BLOCK_CORRUPTIONS = {
    "truncated": truncate,
    "garbage": garbage,
    "wrong_schema": wrong_schema,
    "empty": empty,
    "missing_key": missing_key,
    "missing_digests": missing_digests,
    "ragged_columns": ragged_columns,
}

SHARD_CORRUPTIONS = {
    "truncated": truncate,
    "garbage": garbage,
    "wrong_schema": wrong_schema,
    "empty": empty,
}


@pytest.mark.parametrize(
    "kind", sorted(BLOCK_CORRUPTIONS), ids=sorted(BLOCK_CORRUPTIONS)
)
def test_corrupt_block_is_a_miss_and_gets_rewritten(tmp_path, kind):
    _, original = evaluate_through(tmp_path)
    block = sole_block(tmp_path)
    healthy = block.read_text(encoding="utf-8")
    BLOCK_CORRUPTIONS[kind](block)

    # A fresh service must treat the corrupt block as a miss ...
    service, recomputed = evaluate_through(tmp_path)
    assert service.stats.misses == 1
    assert service.stats.disk_hits == 0
    # ... return the bit-identical result ...
    assert recomputed.total_gbps == original.total_gbps
    assert recomputed.counters == original.counters
    # ... and re-write the block so the next process hits cleanly.
    assert block.read_text(encoding="utf-8") == healthy
    follower, _ = evaluate_through(tmp_path)
    assert follower.stats.disk_hits == 1


@pytest.mark.parametrize(
    "kind", sorted(SHARD_CORRUPTIONS), ids=sorted(SHARD_CORRUPTIONS)
)
def test_corrupt_index_shard_is_a_miss_and_gets_rewritten(tmp_path, kind):
    _, original = evaluate_through(tmp_path)
    shard = sole_shard(tmp_path)
    healthy = shard.read_text(encoding="utf-8")
    SHARD_CORRUPTIONS[kind](shard)

    service, recomputed = evaluate_through(tmp_path)
    assert service.stats.misses == 1
    assert service.stats.disk_hits == 0
    assert recomputed.total_gbps == original.total_gbps
    assert shard.read_text(encoding="utf-8") == healthy
    follower, _ = evaluate_through(tmp_path)
    assert follower.stats.disk_hits == 1


def test_stale_index_row_is_a_miss(tmp_path):
    """An index entry pointing at the wrong row must not mis-serve."""
    evaluate_through(tmp_path)
    shard = sole_shard(tmp_path)
    payload = json.loads(shard.read_text(encoding="utf-8"))
    for digest in payload["entries"]:
        payload["entries"][digest][1] = 7  # row out of range
    shard.write_text(json.dumps(payload), encoding="utf-8")
    service, _ = evaluate_through(tmp_path)
    assert service.stats.misses == 1
    assert service.stats.disk_hits == 0


def test_legacy_v1_entry_is_a_miss_and_gets_migrated(tmp_path):
    """v1 per-point entries are never read; recompute rewrites as a block."""
    streams = (SPEC,)
    state = DirectoryState.cold()
    normalized = state.restrict(observable_pairs(streams))
    digest = request_digest(paper_config(), streams, normalized)
    fresh = evaluation.evaluate(paper_config(), streams, normalized)
    legacy = tmp_path / digest[:2] / f"{digest}.json"
    legacy.parent.mkdir(parents=True)
    legacy.write_text(_canonical(result_to_payload(fresh)), encoding="utf-8")

    service, recomputed = evaluate_through(tmp_path)
    assert service.stats.misses == 1
    assert service.stats.disk_hits == 0
    assert recomputed.total_gbps == fresh.total_gbps
    # The legacy entry is retired and replaced by a column block ...
    assert not legacy.exists()
    sole_block(tmp_path)
    # ... which the next process hits.
    follower, _ = evaluate_through(tmp_path)
    assert follower.stats.disk_hits == 1


def test_corrupt_entry_counts_as_miss_in_recorder(tmp_path):
    evaluate_through(tmp_path)
    garbage(sole_block(tmp_path))
    rec = CountersRecorder()
    service = EvaluationService(disk_cache=DiskCache(tmp_path), memoize=False)
    service.evaluate(paper_config(), [SPEC], DirectoryState.cold(), recorder=rec)
    assert rec.counter("sweep.cache.misses_count") == 1.0
    assert rec.counter("sweep.cache.hits_count") == 0.0


def test_clean_entry_still_hits(tmp_path):
    """Control case: without corruption the second service hits disk."""
    evaluate_through(tmp_path)
    service, _ = evaluate_through(tmp_path)
    assert service.stats.disk_hits == 1
    assert service.stats.misses == 0


def test_corruption_does_not_leak_into_results(tmp_path):
    """The re-evaluated result must match a never-cached evaluation."""
    _, original = evaluate_through(tmp_path)
    wrong_schema(sole_block(tmp_path))
    _, recomputed = evaluate_through(tmp_path)
    fresh = evaluation.evaluate(paper_config(), [SPEC], DirectoryState.cold())
    assert recomputed.total_gbps == fresh.total_gbps == original.total_gbps
