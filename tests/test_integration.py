"""End-to-end integration: the README story, executed.

One flow through every layer: model the hardware, derive the practices,
let the tuner and advisor configure a deployment, run the SSB, price it,
plan the hybrid, and check that all the conclusions cohere.
"""

import pytest

from repro import (
    BandwidthModel,
    MediaKind,
    PlacementAdvisor,
    WorkloadIntent,
    paper_server,
    verify_all,
    verify_practices,
)
from repro.core import AccessProfile, economics, tune
from repro.core.hybrid import HybridPlanner, ssb_structures
from repro.memsim.spec import Op
from repro.ssb.runner import SsbRunner, average_slowdown
from repro.ssb.storage import HANDCRAFTED_DRAM, HANDCRAFTED_PMEM, HYBRID_PMEM_DRAM
from repro.units import GIB


@pytest.fixture(scope="module")
def model():
    return BandwidthModel(paper_server())


@pytest.fixture(scope="module")
def runner():
    return SsbRunner(measured_sf=0.02, seed=5)


class TestFullStory:
    def test_chapter1_hardware_characterisation(self, model):
        """§3-§5: the device asymmetries exist and the insights hold."""
        read = model.sequential_read(18, 4096)
        write = max(model.sequential_write(t, 4096) for t in (4, 6))
        assert 2.5 < read / write < 4.0  # reads ~3x writes
        assert all(verify_all(model).values())
        assert all(verify_practices(model).values())

    def test_chapter2_the_tuner_rediscovers_the_practices(self, model):
        """The optimal configurations are the recommended ones."""
        write_best = tune(Op.WRITE, model=model).best.spec
        assert write_best.threads in (4, 6)
        assert write_best.access_size == 4096

    def test_chapter3_the_advisor_configures_a_warehouse(self, model):
        recommendation = PlacementAdvisor(model).recommend(
            WorkloadIntent(profile=AccessProfile.JOIN_HEAVY)
        )
        assert recommendation.write_threads <= 8
        assert recommendation.stripe_across_sockets
        assert recommendation.expected_read_gbps > 35

    def test_chapter4_the_ssb_validates_the_design(self, runner):
        """§6: the aware engine keeps PMEM within ~2x of DRAM."""
        fb = runner.figure14b()
        slowdown = average_slowdown(fb["pmem"], fb["dram"])
        assert 1.3 < slowdown < 2.8
        fa = runner.figure14a()
        assert average_slowdown(fa["pmem"], fa["dram"]) > 1.7 * slowdown

    def test_chapter5_the_economics_close_the_argument(self, runner):
        """§7: at the measured slowdown, PMEM wins on price/performance."""
        fb = runner.figure14b()
        slowdown = average_slowdown(fb["pmem"], fb["dram"])
        verdict = economics.compare(capacity=12 * 128 * GIB, slowdown=slowdown)
        assert verdict.pmem_wins

    def test_chapter6_the_hybrid_future_work(self, runner):
        """§9: DRAM for the indexes closes most of the gap."""
        structures = ssb_structures(runner, target_sf=100.0)
        plan = HybridPlanner().plan(structures, dram_budget=48 * GIB)
        assert plan.media_of("lineorder (fact table)") is MediaKind.PMEM
        assert any(
            p.media is MediaKind.DRAM and "index" in p.structure.name
            for p in plan.placements
        )
        pmem = runner.run(HANDCRAFTED_PMEM, target_sf=100).average_seconds
        hybrid = runner.run(HYBRID_PMEM_DRAM, target_sf=100).average_seconds
        dram = runner.run(HANDCRAFTED_DRAM, target_sf=100).average_seconds
        assert hybrid - dram < 0.4 * (pmem - dram)

    def test_chapter7_everything_is_reproducible(self, runner):
        """Same inputs, same story, twice."""
        fb1 = runner.figure14b()
        fb2 = runner.figure14b()
        assert fb1["pmem"].seconds == fb2["pmem"].seconds
