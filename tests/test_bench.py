"""Bench harness: selection, schema validation, and the smoke run."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.bench import (
    SCHEMA,
    SMOKE_BENCHES,
    bench_dir,
    resolve_selection,
    validate_payload,
    write_payload,
)
from repro.errors import BenchError


def minimal_payload() -> dict:
    return {
        "schema": SCHEMA,
        "created": "20260807T000000Z",
        "config": {
            "jobs": 1, "backend": "thread", "smoke": True,
            "warmup": False, "rounds": 1,
        },
        "cache_stats": {"hits": 0, "misses": 3, "disk_hits": 0},
        "benchmarks": [
            {
                "name": "test_sweep_cold",
                "file": "bench_sweep_service.py",
                "mean_seconds": 0.01,
                "min_seconds": 0.009,
                "max_seconds": 0.012,
                "stddev_seconds": 0.001,
                "rounds": 3,
                "extra": {},
            }
        ],
    }


class TestSelection:
    def test_smoke_set_resolves(self):
        selected = resolve_selection(None, smoke=True)
        assert [path.name for path in selected] == list(SMOKE_BENCHES)

    def test_substring_and_stem_match_same_file(self):
        by_sub = resolve_selection(["procpool"])
        by_stem = resolve_selection(["bench_procpool_sweep"])
        by_name = resolve_selection(["bench_procpool_sweep.py"])
        assert by_sub == by_stem == by_name
        assert [path.name for path in by_sub] == ["bench_procpool_sweep.py"]

    def test_no_names_selects_whole_suite(self):
        everything = resolve_selection(None)
        assert len(everything) == len(list(bench_dir().glob("bench_*.py")))

    def test_unknown_name_lists_available(self):
        with pytest.raises(BenchError, match="no benchmark matches 'nope'"):
            resolve_selection(["nope"])


class TestSchema:
    def test_minimal_payload_is_valid(self):
        validate_payload(minimal_payload())

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda p: p.pop("schema"), "schema is None"),
            (lambda p: p.update(schema="repro.bench/0"), "schema is"),
            (lambda p: p.update(created=123), "'created'"),
            (lambda p: p["config"].pop("backend"), "config\\['backend'\\]"),
            (lambda p: p["config"].update(rounds="three"), "config\\['rounds'\\]"),
            (lambda p: p["cache_stats"].pop("disk_hits"), "disk_hits"),
            (lambda p: p.update(benchmarks=[]), "non-empty"),
            (lambda p: p["benchmarks"][0].pop("mean_seconds"), "mean_seconds"),
            (lambda p: p["benchmarks"][0].update(rounds=0), ">= 1"),
            (lambda p: p["benchmarks"][0].update(min_seconds=-1.0), "non-negative"),
        ],
    )
    def test_broken_payloads_rejected(self, mutate, match):
        payload = minimal_payload()
        mutate(payload)
        with pytest.raises(BenchError, match=match):
            validate_payload(payload)

    def test_write_payload_uses_canonical_name(self, tmp_path):
        payload = minimal_payload()
        path = write_payload(payload, tmp_path)
        assert path.name == "BENCH_20260807T000000Z.json"
        assert json.loads(path.read_text()) == payload


class TestSmokeRun:
    def test_repro_bench_smoke_emits_valid_snapshot(self, tmp_path):
        """End-to-end: ``repro bench --smoke`` writes a schema-valid file."""
        out = tmp_path / "snap.json"
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "bench", "--smoke", "-o", str(out)],
            capture_output=True, text=True, timeout=570, env=env,
            cwd=Path(__file__).resolve().parents[1],
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(out.read_text(encoding="utf-8"))
        validate_payload(payload)
        assert payload["config"]["smoke"] is True
        assert payload["config"]["rounds"] == 1
        files = {bench["file"] for bench in payload["benchmarks"]}
        assert files <= set(SMOKE_BENCHES)
        assert "bench_sweep_service.py" in files
