"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig3", "fig14", "table1", "bestpractices"):
            assert exp_id in out


class TestRun:
    def test_runs_experiment(self, capsys):
        assert main(["run", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "paper" in out

    def test_unknown_experiment_raises(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "fig99"])


class TestBandwidth:
    def test_default_read(self, capsys):
        assert main(["bandwidth"]) == 0
        out = capsys.readouterr().out
        assert "GB/s" in out
        assert "read" in out

    def test_write_with_options(self, capsys):
        assert main(
            ["bandwidth", "--op", "write", "--threads", "4", "--size", "4096"]
        ) == 0
        value = float(capsys.readouterr().out.split(":")[-1].split()[0])
        assert value == pytest.approx(12.6, rel=0.05)

    def test_far_cold_read(self, capsys):
        assert main(["bandwidth", "--far", "--cold", "--threads", "4"]) == 0
        value = float(capsys.readouterr().out.split(":")[-1].split()[0])
        assert value == pytest.approx(8.0, rel=0.1)

    def test_random_read(self, capsys):
        assert main(
            ["bandwidth", "--pattern", "random", "--size", "256", "--threads", "36"]
        ) == 0
        assert "random" in capsys.readouterr().out

    def test_dram_grouped(self, capsys):
        assert main(
            ["bandwidth", "--media", "dram", "--layout", "grouped", "--threads", "18"]
        ) == 0
        value = float(capsys.readouterr().out.split(":")[-1].split()[0])
        assert value > 90


class TestVerify:
    def test_all_hold(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "all 12 insights and 7 best practices hold" in out


class TestAdvise:
    def test_scan_heavy(self, capsys):
        assert main(["advise", "--profile", "scan_heavy"]) == 0
        out = capsys.readouterr().out
        assert "Recommended PMEM configuration" in out
        assert "BP2" in out

    def test_constrained(self, capsys):
        assert main(
            ["advise", "--profile", "mixed", "--threads", "8",
             "--no-system-control", "--needs-filesystem"]
        ) == 0
        out = capsys.readouterr().out
        assert "fsdax" in out
        assert "numa_region" in out


class TestSsb:
    def test_ssb_runs(self, capsys):
        assert main(["ssb", "--sf", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Figure 14b" in out
        assert "Table 1" in out
        assert "SSD" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["fly"])


class TestClusterCli:
    def test_unknown_backend_rejected_naming_choices(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "fig4", "--backend", "greenlet"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "greenlet" in err
        assert "cluster" in err  # the valid set is spelled out

    def test_cluster_flags_parse_and_run(self, capsys):
        assert main(
            ["run", "fig4", "--backend", "cluster", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "fig4" in out

    def test_bad_connect_endpoint_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="HOST:PORT"):
            main(
                ["run", "fig4", "--backend", "cluster",
                 "--connect", "no-port-here"]
            )


class TestHybrid:
    def test_hybrid_plan(self, capsys):
        assert main(["hybrid", "--sf", "0.02", "--dram-budget-gib", "8"]) == 0
        out = capsys.readouterr().out
        assert "hybrid plan" in out
        assert "PMEM-only" in out and "DRAM-only" in out


@pytest.fixture
def fresh_default_service():
    """Isolate the process-wide evaluation service: earlier tests may
    have warmed its memo cache, which would turn every evaluation into
    a cache hit and suppress the memsim.* counters asserted below."""
    from repro.sweep import set_default_service

    previous = set_default_service(None)
    yield
    set_default_service(previous)


class TestRunMetrics:
    def test_metrics_prints_counter_report(self, fresh_default_service, capsys):
        assert main(["run", "fig5", "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "counters:" in out
        assert "memsim.app.read_bytes" in out
        assert "sweep.cache.misses_count" in out

    def test_metrics_snapshot_written_as_canonical_json(self, tmp_path, capsys):
        import json

        from repro.obs.golden import canonical_json

        target = tmp_path / "metrics.json"
        assert main(["run", "fig5", "--metrics", "-o", str(target)]) == 0
        snapshot = json.loads(target.read_text(encoding="utf-8"))
        assert set(snapshot) == {"counters", "histograms", "events", "spans"}
        assert target.read_text(encoding="utf-8") == canonical_json(snapshot)

    def test_without_metrics_no_counter_report(self, capsys):
        assert main(["run", "fig5"]) == 0
        assert "counters:" not in capsys.readouterr().out


class TestTrace:
    def test_trace_to_stdout_is_valid_jsonl(self, capsys):
        import json

        assert main(["trace", "fig5"]) == 0
        lines = capsys.readouterr().out.splitlines()
        records = [json.loads(line) for line in lines]
        assert records[0]["type"] == "span_begin"
        assert records[0]["fields"] == {"exp_id": "fig5"}
        assert records[-1]["type"] == "span_end"
        assert [r["seq"] for r in records] == list(range(len(records)))
        # Deterministic by default: no wall-clock fields.
        assert all("t" not in r for r in records)

    def test_trace_to_file(self, tmp_path, capsys):
        import json

        target = tmp_path / "trace.jsonl"
        assert main(["trace", "fig5", "-o", str(target)]) == 0
        assert "trace records" in capsys.readouterr().out
        records = [
            json.loads(line)
            for line in target.read_text(encoding="utf-8").splitlines()
        ]
        assert any(r["type"] == "counter" for r in records)

    def test_trace_timestamps_flag_adds_t(self, tmp_path):
        import json

        target = tmp_path / "trace.jsonl"
        assert main(["trace", "fig5", "-o", str(target), "--timestamps"]) == 0
        first = json.loads(target.read_text(encoding="utf-8").splitlines()[0])
        assert "t" in first


class TestLint:
    def test_lint_json_smoke(self, capsys):
        # The tree must be clean, so the subcommand exits 0 and emits a
        # JSON report over the configured paths.
        import json

        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["files"] > 0

    def test_lint_reports_findings_on_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1.0 == 1.0\n")
        assert main(["lint", str(bad)]) == 1
        assert "SIM107" in capsys.readouterr().out

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        assert "unit-literal" in capsys.readouterr().out
