"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for exp_id in ("fig3", "fig14", "table1", "bestpractices"):
            assert exp_id in out


class TestRun:
    def test_runs_experiment(self, capsys):
        assert main(["run", "fig4"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out
        assert "paper" in out

    def test_unknown_experiment_raises(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            main(["run", "fig99"])


class TestBandwidth:
    def test_default_read(self, capsys):
        assert main(["bandwidth"]) == 0
        out = capsys.readouterr().out
        assert "GB/s" in out
        assert "read" in out

    def test_write_with_options(self, capsys):
        assert main(
            ["bandwidth", "--op", "write", "--threads", "4", "--size", "4096"]
        ) == 0
        value = float(capsys.readouterr().out.split(":")[-1].split()[0])
        assert value == pytest.approx(12.6, rel=0.05)

    def test_far_cold_read(self, capsys):
        assert main(["bandwidth", "--far", "--cold", "--threads", "4"]) == 0
        value = float(capsys.readouterr().out.split(":")[-1].split()[0])
        assert value == pytest.approx(8.0, rel=0.1)

    def test_random_read(self, capsys):
        assert main(
            ["bandwidth", "--pattern", "random", "--size", "256", "--threads", "36"]
        ) == 0
        assert "random" in capsys.readouterr().out

    def test_dram_grouped(self, capsys):
        assert main(
            ["bandwidth", "--media", "dram", "--layout", "grouped", "--threads", "18"]
        ) == 0
        value = float(capsys.readouterr().out.split(":")[-1].split()[0])
        assert value > 90


class TestVerify:
    def test_all_hold(self, capsys):
        assert main(["verify"]) == 0
        out = capsys.readouterr().out
        assert "all 12 insights and 7 best practices hold" in out


class TestAdvise:
    def test_scan_heavy(self, capsys):
        assert main(["advise", "--profile", "scan_heavy"]) == 0
        out = capsys.readouterr().out
        assert "Recommended PMEM configuration" in out
        assert "BP2" in out

    def test_constrained(self, capsys):
        assert main(
            ["advise", "--profile", "mixed", "--threads", "8",
             "--no-system-control", "--needs-filesystem"]
        ) == 0
        out = capsys.readouterr().out
        assert "fsdax" in out
        assert "numa_region" in out


class TestSsb:
    def test_ssb_runs(self, capsys):
        assert main(["ssb", "--sf", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Figure 14b" in out
        assert "Table 1" in out
        assert "SSD" in out


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["fly"])


class TestHybrid:
    def test_hybrid_plan(self, capsys):
        assert main(["hybrid", "--sf", "0.02", "--dram-budget-gib", "8"]) == 0
        out = capsys.readouterr().out
        assert "hybrid plan" in out
        assert "PMEM-only" in out and "DRAM-only" in out


class TestLint:
    def test_lint_json_smoke(self, capsys):
        # The tree must be clean, so the subcommand exits 0 and emits a
        # JSON report over the configured paths.
        import json

        assert main(["lint", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["files"] > 0

    def test_lint_reports_findings_on_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("x = 1.0 == 1.0\n")
        assert main(["lint", str(bad)]) == 1
        assert "SIM201" in capsys.readouterr().out

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        assert "unit-literal" in capsys.readouterr().out
