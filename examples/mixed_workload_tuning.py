#!/usr/bin/env python3
"""Tune an ingest-while-querying system on PMEM (paper §5.1).

A warehouse ingesting data while serving scans must split its threads
between writers and readers. This example sweeps the split with the
mixed-workload model, shows the interference cliff the paper measured
(Figure 11), and finds the split that meets an ingest SLO while
maximizing scan bandwidth — then checks the paper's "serialize when you
can" advice by comparing against phase-separated execution.

Run:  python examples/mixed_workload_tuning.py
"""

from repro import BandwidthModel
from repro.units import GIB


def main() -> None:
    model = BandwidthModel()

    print("interference map (write GB/s / read GB/s):")
    read_counts = (1, 8, 18, 30)
    print("           " + "".join(f"{r:>14} rd" for r in read_counts))
    for writers in (1, 2, 4, 6):
        row = []
        for readers in read_counts:
            outcome = model.mixed(write_threads=writers, read_threads=readers)
            row.append(f"{outcome.write_gbps:5.1f} / {outcome.read_gbps:5.1f}")
        print(f"  {writers} wr    " + "  ".join(f"{c:>14}" for c in row))
    print()

    ingest_slo_gbps = 3.0
    best = None
    for writers in range(1, 7):
        for readers in range(1, 37 - writers):
            outcome = model.mixed(write_threads=writers, read_threads=readers)
            if outcome.write_gbps >= ingest_slo_gbps:
                if best is None or outcome.read_gbps > best[2].read_gbps:
                    best = (writers, readers, outcome)
    assert best is not None
    writers, readers, outcome = best
    print(
        f"to sustain {ingest_slo_gbps:.0f} GB/s of ingest, use {writers} "
        f"writers + {readers} readers: ingest {outcome.write_gbps:.1f} GB/s, "
        f"scans {outcome.read_gbps:.1f} GB/s"
    )

    # Best practice 5: avoid large mixed workloads when latency allows.
    data = 40 * GIB
    mixed_time = max(
        data / (outcome.write_gbps * 1e9), data / (outcome.read_gbps * 1e9)
    )
    write_alone = model.sequential_write(6, 4096)
    read_alone = model.sequential_read(18, 4096)
    serialized_time = data / (write_alone * 1e9) + data / (read_alone * 1e9)
    print(
        f"\nmoving 40 GiB each way: concurrent {mixed_time:.1f}s vs "
        f"serialized {serialized_time:.1f}s -> "
        + (
            "serialize (best practice 5)"
            if serialized_time < mixed_time
            else "run concurrently"
        )
    )


if __name__ == "__main__":
    main()
