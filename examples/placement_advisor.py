#!/usr/bin/env python3
"""Use the placement advisor to configure three OLAP deployments.

The advisor is the actionable form of the paper's best practices: a
system designer describes the workload, the advisor returns thread
counts, access sizes, pinning, placement, and dax mode — each choice
annotated with the best practice it derives from, and with bandwidths
predicted by the model rather than promised by a rule of thumb.

Run:  python examples/placement_advisor.py
"""

from repro import BandwidthModel, PlacementAdvisor, WorkloadIntent
from repro.core import AccessProfile


def main() -> None:
    advisor = PlacementAdvisor(BandwidthModel())

    scenarios = [
        (
            "Interactive dashboard farm (scan-heavy, full control)",
            WorkloadIntent(profile=AccessProfile.SCAN_HEAVY),
        ),
        (
            "Ad-hoc analytics on a shared box (join-heavy, no pinning rights, "
            "needs a filesystem)",
            WorkloadIntent(
                profile=AccessProfile.JOIN_HEAVY,
                full_system_control=False,
                needs_filesystem=True,
            ),
        ),
        (
            "Always-on ingestion plus reporting (mixed, small appends)",
            WorkloadIntent(
                profile=AccessProfile.MIXED,
                min_write_granularity=64,
            ),
        ),
    ]

    for title, intent in scenarios:
        print("=" * 72)
        print(title)
        print("-" * 72)
        recommendation = advisor.recommend(intent)
        print(recommendation.describe())
        print()


if __name__ == "__main__":
    main()
