#!/usr/bin/env python3
"""Quickstart: explore the modeled PMEM server in five minutes.

Walks through the paper's central findings interactively: the read/write
asymmetry, the write boomerang, NUMA cliffs, and the seven best
practices — all computed live from the mechanistic model.

Run:  python examples/quickstart.py
"""

from repro import BandwidthModel, Layout, MediaKind, PinningPolicy, paper_server
from repro.core import practices_report


def main() -> None:
    topology = paper_server()
    print(topology.describe())
    print()

    model = BandwidthModel(topology)

    print("1. Reads behave like slower DRAM (§3) ------------------------")
    for threads in (1, 4, 8, 18, 36):
        pmem = model.sequential_read(threads, 4096)
        dram = model.sequential_read(threads, 4096, media=MediaKind.DRAM)
        print(f"   {threads:>2} threads: PMEM {pmem:5.1f} GB/s   DRAM {dram:6.1f} GB/s")
    print()

    print("2. Writes do not: the boomerang (§4) -------------------------")
    print("   threads \\ access size:   256B    4KB   64KB    1MB")
    for threads in (4, 6, 8, 18, 36):
        row = [
            model.sequential_write(threads, size)
            for size in (256, 4096, 65536, 1 << 20)
        ]
        cells = "  ".join(f"{value:5.1f}" for value in row)
        print(f"   {threads:>2} threads            {cells}")
    print("   -> 4-6 threads hold the peak everywhere; scaling both axes")
    print("      collapses bandwidth (best practice 2).")
    print()

    print("3. NUMA is a cliff, not a slope (§3.4) -----------------------")
    model.reset_directory()
    near = model.sequential_read(18, 4096)
    cold = model.sequential_read(18, 4096, far=True, warm=False)
    warm = model.sequential_read(18, 4096, far=True, warm=False)  # 2nd run
    unpinned = model.sequential_read(18, 4096, pinning=PinningPolicy.NONE)
    print(f"   near PMEM            : {near:5.1f} GB/s")
    print(f"   far PMEM, first run  : {cold:5.1f} GB/s  (directory cold)")
    print(f"   far PMEM, second run : {warm:5.1f} GB/s  (directory warm)")
    print(f"   unpinned threads     : {unpinned:5.1f} GB/s  (scheduler churn)")
    print()

    print("4. Grouped sub-line reads share Optane lines (§3.1) ----------")
    for size in (64, 256, 4096):
        grouped = model.sequential_read(36, size, layout=Layout.GROUPED)
        individual = model.sequential_read(36, size)
        print(
            f"   {size:>5} B: grouped {grouped:5.1f} GB/s   "
            f"individual {individual:5.1f} GB/s"
        )
    print()

    print("5. The seven best practices, derived (§7) --------------------")
    print(practices_report(model))


if __name__ == "__main__":
    main()
