#!/usr/bin/env python3
"""Run the Star Schema Benchmark reproduction end to end.

Generates SSB data, executes all 13 queries for real (results are
checked against each other across engine profiles), and prices the
recorded traffic for the paper's four deployments — reproducing
Figure 14, Table 1, and the SSD contrast.

Run:  python examples/ssb_analysis.py  [scale-factor]
"""

import sys

from repro.ssb.queries import ALL_QUERIES
from repro.ssb.runner import SsbRunner, average_slowdown, slowdown


def main() -> None:
    measured_sf = float(sys.argv[1]) if len(sys.argv) > 1 else 0.05
    print(f"executing SSB at sf {measured_sf} (traffic scaled to sf 50/100) ...")
    runner = SsbRunner(measured_sf=measured_sf)

    print("\n== Figure 14b: handcrafted PMEM-aware implementation, sf 100 ==")
    handcrafted = runner.figure14b()
    ratios = slowdown(handcrafted["pmem"], handcrafted["dram"])
    print(f"{'query':<6} {'PMEM':>8} {'DRAM':>8} {'ratio':>6}")
    for query in ALL_QUERIES:
        pmem = handcrafted["pmem"].breakdowns[query.name].seconds
        dram = handcrafted["dram"].breakdowns[query.name].seconds
        print(f"{query.name:<6} {pmem:7.2f}s {dram:7.2f}s {ratios[query.name]:5.2f}x")
    print(
        f"average slowdown: "
        f"{average_slowdown(handcrafted['pmem'], handcrafted['dram']):.2f}x "
        "(paper: 1.66x)"
    )

    print("\n== Figure 14a: Hyrise (PMEM-unaware), sf 50 ==")
    hyrise = runner.figure14a()
    print(
        f"average slowdown: "
        f"{average_slowdown(hyrise['pmem'], hyrise['dram']):.2f}x (paper: 5.3x)"
    )

    print("\n== Table 1: optimizing Q2.1 step by step, sf 100 ==")
    ladder = runner.table1()
    steps = list(ladder["pmem"])
    print(f"{'':<6} " + " ".join(f"{step:>10}" for step in steps))
    for media in ("pmem", "dram"):
        cells = " ".join(f"{ladder[media][step]:9.1f}s" for step in steps)
        print(f"{media:<6} {cells}")
    print("(paper PMEM: 306.7 / 25.1 / 12.3 / 9.4 / 8.6;"
          " DRAM: 221.2 / 15.2 / 9.2 / 5.2 / 5.2)")

    ssd = runner.q21_on_ssd()
    pmem_final = ladder["pmem"]["Pinning"]
    print(
        f"\ntraditional NVMe-SSD deployment runs Q2.1 in {ssd:.1f}s — "
        f"PMEM is {ssd / pmem_final:.1f}x faster (paper: 2.6x)"
    )

    q21 = handcrafted["pmem"].breakdowns["Q2.1"]
    print(f"\nQ2.1 cost breakdown on PMEM:\n{q21.describe()}")


if __name__ == "__main__":
    main()
