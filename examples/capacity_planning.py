#!/usr/bin/env python3
"""Capacity planning: should the next data-warehouse node use PMEM?

Combines three pieces of the library: the topology (how much memory a
node can hold), the SSB reproduction (the measured PMEM/DRAM slowdown
for the workload class), and the §7 price model (what each option
costs). The answer is the paper's closing argument, recomputed for any
capacity instead of quoted.

Run:  python examples/capacity_planning.py
"""

from repro import MediaKind, paper_server
from repro.core import economics
from repro.ssb.runner import SsbRunner, average_slowdown
from repro.units import GIB, TIB


def main() -> None:
    topology = paper_server()
    pmem_capacity = topology.capacity(MediaKind.PMEM)
    dram_capacity = topology.capacity(MediaKind.DRAM)
    print(
        f"one node holds {pmem_capacity / TIB:.1f} TiB PMEM but only "
        f"{dram_capacity / GIB:.0f} GiB DRAM — capacity is the first reason "
        "to consider PMEM at all.\n"
    )

    print("measuring the workload slowdown (SSB, PMEM-aware engine) ...")
    runner = SsbRunner(measured_sf=0.05)
    handcrafted = runner.figure14b()
    measured = average_slowdown(handcrafted["pmem"], handcrafted["dram"])
    print(f"measured average PMEM/DRAM slowdown: {measured:.2f}x\n")

    print("price/performance across warehouse sizes:")
    for capacity in (512 * GIB, int(1.5 * TIB), 3 * TIB, 6 * TIB):
        result = economics.compare(capacity=capacity, slowdown=measured)
        print("  " + result.describe())
    print()

    breakeven = economics.breakeven_slowdown(int(1.5 * TIB))
    print(
        f"break-even slowdown at 1.5 TiB: {breakeven:.2f}x — PMEM keeps "
        "winning as long as the engine stays PMEM-aware."
    )
    hyrise = runner.figure14a()
    unaware = average_slowdown(hyrise["pmem"], hyrise["dram"])
    verdict = economics.compare(capacity=int(1.5 * TIB), slowdown=unaware)
    print(
        f"with a PMEM-unaware engine (slowdown {unaware:.2f}x) the same "
        f"node {'still wins' if verdict.pmem_wins else 'LOSES'} on "
        "price/performance — awareness is worth money."
    )


if __name__ == "__main__":
    main()
