#!/usr/bin/env python3
"""Design a hybrid PMEM-DRAM deployment (the paper's future work, §9).

Derives the SSB workload's placeable structures from real executed
traffic, plans which belong in scarce DRAM (the §5.2 principle: DRAM for
random access, PMEM for scans), and compares the resulting deployment
against PMEM-only and DRAM-only — in runtime *and* in dollars.

Run:  python examples/hybrid_design.py
"""

from repro.core import economics
from repro.core.hybrid import HybridPlanner, ssb_structures
from repro.ssb.runner import SsbRunner
from repro.ssb.storage import HANDCRAFTED_DRAM, HANDCRAFTED_PMEM, HYBRID_PMEM_DRAM
from repro.units import GIB


def main() -> None:
    runner = SsbRunner(measured_sf=0.05)

    print("deriving placeable structures from executed SSB traffic ...")
    structures = ssb_structures(runner, target_sf=100.0)
    planner = HybridPlanner()
    # The paper's server has 93 GiB of DRAM per socket; leave half for
    # the OS and execution state.
    plan = planner.plan(structures, dram_budget=48 * GIB)
    print(plan.describe())
    print()

    print("pricing the three deployments at sf 100:")
    runs = {
        "PMEM-only": runner.run(HANDCRAFTED_PMEM, target_sf=100),
        "hybrid   ": runner.run(HYBRID_PMEM_DRAM, target_sf=100),
        "DRAM-only": runner.run(HANDCRAFTED_DRAM, target_sf=100),
    }
    dram_avg = runs["DRAM-only"].average_seconds
    for name, run in runs.items():
        print(
            f"  {name}: avg query {run.average_seconds:6.2f}s "
            f"({run.average_seconds / dram_avg:.2f}x of DRAM-only)"
        )
    print()

    hybrid_slowdown = runs["hybrid   "].average_seconds / dram_avg
    verdict = economics.compare(capacity=12 * 128 * GIB, slowdown=hybrid_slowdown)
    print("price/performance of the hybrid against an all-DRAM node:")
    print("  " + verdict.describe())
    print(
        "\nthe hybrid keeps PMEM's capacity and ~cost while closing most "
        "of the performance gap — the design §9 names as future work."
    )


if __name__ == "__main__":
    main()
